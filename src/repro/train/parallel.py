"""Sharded multi-worker skip-gram training over shared-memory tables.

This is the "8-GPU Kuaishou" row of the paper's substitution table done
honestly on CPU: the multiplex graph is partitioned by node shard, and K
``multiprocessing`` workers run the trainer's sample→batch→update stages
concurrently — frontier walkers restricted to each worker's owned start
nodes, skip-gram sparse-SGD updates scattered into embedding tables that
all workers share.

Sharing model
-------------
- **Embedding tables** live in ``multiprocessing.RawArray`` buffers wrapped
  as numpy views: one ``(num_nodes, dim)`` input table per relationship
  (the relationship-specific embeddings of Eq. 12) plus one shared context
  table for the skip-gram output side.  Forked workers mutate the same
  pages the parent reads.
- **Graph CSR and alias tables** are built once in the parent and reach
  workers through fork copy-on-write inheritance — read-only, so the pages
  are never duplicated.  (This is why the trainer requires the ``fork``
  start method for true parallelism and falls back to in-process
  sequential execution elsewhere.)

Update modes
------------
- ``hogwild`` — workers scatter ``np.add.at`` updates straight into the
  shared tables, lock-free.  Sparse gradients rarely collide on the same
  rows (Niu et al., 2011), but the result is nondeterministic for K > 1.
- ``average`` — each worker trains a private copy of the epoch-start
  tables on its shard and publishes it to a per-worker slab; the parent
  replaces the master with the slab mean in fixed worker order.
  Deterministic for any K (each worker's stream is an isolated function
  of the epoch's spawned RNGs).  Averaging scales each worker's
  contribution by 1/K, so the step size follows the linear scaling rule:
  effective lr = ``learning_rate × K`` for K > 1, keeping per-epoch
  progress comparable to the single-worker run.

Determinism contract
--------------------
``workers=1`` always runs the single worker in-process — no fork, no
races — and is bit-identical across runs for either update mode.  It is
the differential baseline that ``repro verify --suite parallel`` holds
K-worker runs against (metric tolerance, not bit-identity).  The staged
:class:`~repro.core.trainer.SkipGramTrainer` retains its own bit-exact
oracle (``_reference_fit``) for the model-based path.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.persistence import EmbeddingStore
from repro.core.trainer import TrainingHistory
from repro.datasets.splits import EdgeSplit
from repro.errors import TrainingError
from repro.eval.link_prediction import evaluate_link_prediction
from repro.graph.schema import MetapathScheme
from repro.perf import StageProfiler
from repro.sampling.adjacency import TypedAdjacencyCache
from repro.sampling.context import context_pairs
from repro.sampling.frontier import concat_matrices
from repro.sampling.metapath_walk import MetapathWalker
from repro.sampling.negative import UnigramNegativeSampler
from repro.sampling.random_walk import UniformRandomWalker
from repro.utils.concurrency import register_shared_region
from repro.utils.rng import SeedLike, as_rng, spawn_rng, spawn_rngs

#: Key of the shared skip-gram context (output) table in table dicts.
CONTEXT_KEY = "__context__"

UPDATE_MODES = ("hogwild", "average")


@dataclass(frozen=True)
class ParallelTrainerConfig:
    """Settings for :class:`ParallelSkipGramTrainer`.

    The loop parameters mirror :class:`~repro.core.config.TrainerConfig`;
    ``workers``/``update_mode``/``dim``/``num_negatives`` are specific to
    the sharded executor (which trains raw embedding tables rather than a
    model, so the embedding width lives here).
    """

    workers: int = 1
    update_mode: str = "hogwild"
    dim: int = 32
    num_negatives: int = 5
    epochs: int = 5
    batch_size: int = 1024
    learning_rate: float = 0.025
    num_walks: int = 2
    walk_length: int = 8
    window: int = 3
    patience: int = 5

    def __post_init__(self):
        if self.workers < 1:
            raise TrainingError("workers must be >= 1")
        if self.update_mode not in UPDATE_MODES:
            raise TrainingError(
                f"unknown update_mode {self.update_mode!r}; "
                f"expected one of {UPDATE_MODES}"
            )
        if self.dim < 1:
            raise TrainingError("dim must be >= 1")
        if self.num_negatives < 1:
            raise TrainingError("num_negatives must be >= 1")
        if self.epochs < 1:
            raise TrainingError("epochs must be >= 1")
        if self.batch_size < 1:
            raise TrainingError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if self.num_walks < 1 or self.walk_length < 2:
            raise TrainingError("walk settings must allow at least one hop")
        if self.window < 1:
            raise TrainingError("window must be >= 1")
        if self.patience < 1:
            raise TrainingError("patience must be >= 1")


def shard_nodes(num_nodes: int, workers: int) -> List[np.ndarray]:
    """Round-robin shard plan: worker ``w`` owns node ``v`` iff ``v % K == w``.

    Round-robin (rather than contiguous ranges) spreads every node type
    and degree regime evenly across workers — synthetic generators and
    real datasets both lay out node types in contiguous id blocks, which
    contiguous sharding would assign wholesale to single workers.
    The shards partition ``range(num_nodes)``: disjoint and complete
    (``verify --suite parallel`` asserts this exactly).
    """
    if workers < 1:
        raise TrainingError("workers must be >= 1")
    ids = np.arange(num_nodes, dtype=np.int64)
    return [ids[ids % workers == w] for w in range(workers)]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # tanh form is numerically stable for large |x|.
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def _shared_zeros(shape) -> np.ndarray:
    """A numpy view over an unlocked shared-memory buffer.

    ``RawArray`` allocates an anonymous shared mmap, so forked children
    and the parent see one another's writes; there is deliberately no
    lock (hogwild updates race by design, averaging never writes the
    same slab twice).
    """
    size = int(np.prod(shape))
    raw = mp.RawArray(ctypes.c_double, size)
    return np.frombuffer(raw, dtype=np.float64).reshape(shape)


class ParallelSkipGramTrainer:
    """Trains per-relationship embedding tables across sharded workers.

    Constructor signature mirrors :class:`~repro.core.trainer.SkipGramTrainer`
    (schemes, split, config, rng); the difference is the trained object —
    shared-memory embedding tables updated by word2vec-style sparse SGD
    instead of an autograd model stepped by Adam, because dense optimiser
    state over million-node tables is exactly what does not scale.

    ``fit`` returns the same :class:`~repro.core.trainer.TrainingHistory`
    (validation ROC-AUC early stopping, best-epoch restore); trained
    tables come out as an :class:`~repro.core.persistence.EmbeddingStore`
    via :meth:`embeddings`, pluggable into every evaluator and the serving
    stack.
    """

    def __init__(
        self,
        schemes_by_relation: Dict[str, List[MetapathScheme]],
        split: EdgeSplit,
        config: Optional[ParallelTrainerConfig] = None,
        rng: SeedLike = None,
    ):
        self.schemes_by_relation = schemes_by_relation
        self.split = split
        self.config = ParallelTrainerConfig() if config is None else config
        self.profiler = StageProfiler()
        self._rng = as_rng(rng)
        graph = split.train_graph
        self.graph = graph
        self._negative_sampler = UnigramNegativeSampler(
            graph, rng=spawn_rng(self._rng)
        )
        self._adjacency = TypedAdjacencyCache(graph)
        self._shards = shard_nodes(graph.num_nodes, self.config.workers)
        # Walk starts per (worker, node type): shard ∩ nodes_of_type,
        # precomputed so workers do no shard arithmetic on the hot path.
        self._shard_starts: List[Dict[str, np.ndarray]] = [
            {
                node_type: shard[
                    graph.node_type_codes[shard]
                    == graph.schema.node_type_index(node_type)
                ]
                for node_type in graph.schema.node_types
            }
            for shard in self._shards
        ]
        # Linear scaling rule: parameter averaging divides every worker's
        # delta by K, so K-worker averaging steps K× larger to keep
        # per-epoch progress comparable to the single-worker baseline.
        # workers=1 (the deterministic mode) is never scaled.
        self._effective_lr = self.config.learning_rate * (
            self.config.workers
            if self.config.update_mode == "average" and self.config.workers > 1
            else 1
        )
        self._tables = self._init_tables()
        # loss sums / batch counts per worker, shared so forked workers
        # can report without a pipe round-trip.
        self._stats = _shared_zeros((2, self.config.workers))
        self._slabs: Optional[List[Dict[str, np.ndarray]]] = None
        # Declared write regions for the runtime sanitizer.  All three
        # are exempt with a stated reason rather than guarded: hogwild
        # races on the master tables by design (Niu et al., 2011), and
        # the stats/slab buffers partition writes per worker.
        self._tables_region = register_shared_region(
            "train.tables", exempt=True,
            reason="hogwild scatters race on the shared master tables by "
                   "design (Niu et al., 2011); averaging mode trains "
                   "private copies instead",
        )
        self._stats_region = register_shared_region(
            "train.stats", exempt=True,
            reason="each worker writes only its own column of the shared "
                   "(2, workers) loss/batch buffer",
        )
        self._slabs_region = register_shared_region(
            "train.slabs", exempt=True,
            reason="one publish slab per worker; no two workers ever "
                   "write the same slab",
        )
        self._prewarm_adjacency()

    # -- shared state --------------------------------------------------
    def _init_tables(self) -> Dict[str, np.ndarray]:
        graph, config = self.graph, self.config
        tables: Dict[str, np.ndarray] = {}
        bound = 0.5 / config.dim
        for relation in graph.schema.relationships:
            table = _shared_zeros((graph.num_nodes, config.dim))
            table[:] = self._rng.uniform(
                -bound, bound, size=(graph.num_nodes, config.dim)
            )
            tables[relation] = table
        # Context (output) table starts at zero, the word2vec convention.
        tables[CONTEXT_KEY] = _shared_zeros((graph.num_nodes, config.dim))
        return tables

    def _prewarm_adjacency(self) -> None:
        """Build every typed-CSR view once, pre-fork.

        The cache fills lazily; warming it in the parent means forked
        workers inherit finished views copy-on-write instead of each
        rebuilding them.
        """
        for relation, schemes in self.schemes_by_relation.items():
            for scheme in schemes:
                for node_type in set(scheme.node_types):
                    self._adjacency.view(relation, node_type)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: table.copy() for name, table in self._tables.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, table in self._tables.items():
            table[:] = state[name]

    def embeddings(self) -> EmbeddingStore:
        """The trained relationship-specific tables as an EmbeddingStore."""
        return EmbeddingStore(
            {
                relation: table.copy()
                for relation, table in self._tables.items()
                if relation != CONTEXT_KEY
            }
        )

    # -- sample stage (per worker) -------------------------------------
    def _shard_pairs(
        self, worker: int, relation: str, rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        """Context pairs from walks started inside ``worker``'s shard.

        Walk *starts* are owned nodes only; the walks themselves traverse
        the full shared CSR, so shard boundaries never truncate contexts.
        """
        graph, config = self.graph, self.config
        starts_by_type = self._shard_starts[worker]
        parts = []
        for scheme in self.schemes_by_relation.get(relation, []):
            starts = starts_by_type[scheme.start_type]
            if len(starts) == 0:
                continue
            walker = MetapathWalker(
                graph, scheme, rng=spawn_rng(rng), adjacency=self._adjacency
            )
            parts.append(
                walker.walks_matrix(
                    config.num_walks, config.walk_length, starts=starts
                )
            )
        if parts:
            matrix, lengths = concat_matrices(parts)
            keep = lengths > 1
        else:
            matrix = np.empty((0, config.walk_length), dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
            keep = np.zeros(0, dtype=bool)
        if not keep.any() and graph.num_edges_in(relation) > 0:
            fallback = UniformRandomWalker(
                graph, relation=relation, rng=spawn_rng(rng)
            )
            matrix, lengths = fallback.walks_matrix(
                config.num_walks, config.walk_length,
                nodes=self._shards[worker],
            )
            keep = lengths > 1
        matrix, lengths = matrix[keep], lengths[keep]
        if len(matrix) == 0:
            return None
        pairs = context_pairs((matrix, lengths), config.window)
        return pairs if len(pairs) else None

    # -- update stage (per worker) -------------------------------------
    def _sgd_batch(
        self,
        w_in: np.ndarray,
        w_out: np.ndarray,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
    ) -> float:
        """One sparse skip-gram SGD step (Eq. 13); returns the batch loss.

        Gathers copy rows, so gradients are computed against a consistent
        snapshot even while other hogwild workers scatter into the same
        tables; ``np.add.at`` handles duplicate ids within the batch.
        """
        lr = self._effective_lr
        h = w_in[centers]
        c_pos = w_out[contexts]
        pos_sig = _sigmoid(np.einsum("bd,bd->b", h, c_pos))
        c_neg = w_out[negatives]
        neg_sig = _sigmoid(np.einsum("bd,bkd->bk", h, c_neg))
        g_pos = pos_sig - 1.0
        g_neg = neg_sig
        grad_h = g_pos[:, None] * c_pos + np.einsum(
            "bk,bkd->bd", g_neg, c_neg
        )
        np.add.at(w_in, centers, -lr * grad_h)
        np.add.at(w_out, contexts, -lr * g_pos[:, None] * h)
        np.add.at(
            w_out,
            negatives.reshape(-1),
            (-lr * g_neg[..., None] * h[:, None, :]).reshape(
                -1, self.config.dim
            ),
        )
        eps = 1e-10
        return float(
            -(np.log(pos_sig + eps).mean()
              + np.log(1.0 - neg_sig + eps).sum(axis=1).mean())
        )

    def _worker_epoch(
        self,
        worker: int,
        rng: np.random.Generator,
        tables: Dict[str, np.ndarray],
    ) -> None:
        """One epoch of one worker: sample → batch → update on its shard.

        ``tables`` is either the shared master (hogwild) or a private
        copy (averaging).  Loss sum and batch count land in the shared
        stats buffer.
        """
        config = self.config
        loss_sum = 0.0
        batch_count = 0
        w_out = tables[CONTEXT_KEY]
        with self._tables_region:
            for relation in self.graph.schema.relationships:
                pairs = self._shard_pairs(worker, relation, rng)
                if pairs is None:
                    continue
                w_in = tables[relation]
                order = rng.permutation(len(pairs))
                for start in range(0, len(pairs), config.batch_size):
                    batch = pairs[order[start: start + config.batch_size]]
                    centers, contexts = batch[:, 0], batch[:, 1]
                    negatives = self._negative_sampler.sample_like(
                        contexts, config.num_negatives, rng=rng
                    )
                    loss_sum += self._sgd_batch(
                        w_in, w_out, centers, contexts, negatives
                    )
                    batch_count += 1
        with self._stats_region:
            self._stats[0, worker] = loss_sum
            self._stats[1, worker] = batch_count

    def _worker_epoch_average(
        self,
        worker: int,
        rng: np.random.Generator,
        snapshot: Dict[str, np.ndarray],
    ) -> None:
        """Averaging-mode worker: train a private copy, publish to a slab."""
        local = {name: table.copy() for name, table in snapshot.items()}
        self._worker_epoch(worker, rng, local)
        slab = self._slabs[worker]
        with self._slabs_region:
            for name, table in local.items():
                slab[name][:] = table

    # -- epoch orchestration (parent) ----------------------------------
    def _ensure_slabs(self) -> None:
        if self._slabs is not None:
            return
        self._slabs = [
            {
                name: _shared_zeros(table.shape)
                for name, table in self._tables.items()
            }
            for _ in range(self.config.workers)
        ]

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in mp.get_all_start_methods()

    def _run_workers(self, targets) -> None:
        """Run worker thunks — forked when possible, else sequentially.

        Sequential execution keeps the trainer usable (and, for averaging,
        semantically identical) on platforms without ``fork``; it simply
        forfeits the speedup.
        """
        if len(targets) > 1 and self._fork_available():
            ctx = mp.get_context("fork")
            procs = [ctx.Process(target=target) for target in targets]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join()
            failed = [p.exitcode for p in procs if p.exitcode != 0]
            if failed:
                raise TrainingError(
                    f"{len(failed)} training worker(s) exited with codes "
                    f"{failed}"
                )
        else:
            for target in targets:
                target()

    def _train_epoch(self) -> float:
        config = self.config
        self._stats[:] = 0.0
        rngs = spawn_rngs(self._rng, config.workers)
        with self.profiler.stage("train.parallel_epoch"):
            if config.workers == 1:
                # Deterministic mode: single worker, in-process, both
                # update modes collapse to the same sequential update.
                self._worker_epoch(0, rngs[0], self._tables)
            elif config.update_mode == "hogwild":
                self._run_workers([
                    (lambda w=w: self._worker_epoch(w, rngs[w], self._tables))
                    for w in range(config.workers)
                ])
            else:  # average
                self._ensure_slabs()
                snapshot = {
                    name: table.copy()
                    for name, table in self._tables.items()
                }
                self._run_workers([
                    (lambda w=w: self._worker_epoch_average(
                        w, rngs[w], snapshot))
                    for w in range(config.workers)
                ])
                with self._tables_region:
                    for name, table in self._tables.items():
                        table[:] = np.mean(
                            [slab[name] for slab in self._slabs], axis=0
                        )
        total_loss = float(self._stats[0].sum())
        total_batches = float(self._stats[1].sum())
        return total_loss / max(1.0, total_batches)

    def _validation_score(self) -> Optional[float]:
        if not self.split.val:
            return None
        with self.profiler.stage("eval.validation"):
            report = evaluate_link_prediction(self.embeddings(), self.split.val)
        return report["roc_auc"]

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Train with validation early stopping; restores the best tables.

        The epoch/early-stop/restore protocol matches
        :meth:`SkipGramTrainer.fit` exactly, so histories are comparable
        across the two executors.
        """
        config = self.config
        history = TrainingHistory()
        best_state = None
        epochs_since_best = 0

        for epoch in range(config.epochs):
            loss = self._train_epoch()
            history.losses.append(loss)
            val_score = self._validation_score()
            if val_score is not None:
                history.val_scores.append(val_score)
                if val_score > history.best_val_score:
                    history.best_val_score = val_score
                    history.best_epoch = epoch
                    best_state = self.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
            if val_score is not None and epochs_since_best >= config.patience:
                history.stopped_early = True
                break

        if best_state is not None:
            self.load_state_dict(best_state)
        return history
