"""Diagnostics over trained relationship-specific embeddings.

Answers the questions a practitioner asks after training: did the model
actually learn *different* representations per relationship (the paper's
whole point), are embeddings healthy (finite, non-collapsed), and does
embedding similarity track graph structure?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.link_prediction import RelationEmbedder
from repro.graph.multiplex import MultiplexHeteroGraph


@dataclass(frozen=True)
class EmbeddingHealth:
    """Basic sanity statistics of one relationship's embedding matrix."""

    relation: str
    mean_norm: float
    std_norm: float
    collapsed: bool        # all vectors nearly identical
    finite: bool


def embedding_health(model: RelationEmbedder, num_nodes: int,
                     relation: str) -> EmbeddingHealth:
    """Norm statistics and collapse/NaN detection for one relationship."""
    matrix = model.node_embeddings(np.arange(num_nodes), relation)
    norms = np.linalg.norm(matrix, axis=1)
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    spread = float(np.linalg.norm(centered, axis=1).mean())
    scale = float(norms.mean())
    return EmbeddingHealth(
        relation=relation,
        mean_norm=float(norms.mean()),
        std_norm=float(norms.std()),
        collapsed=spread < 1e-6 * max(scale, 1e-12),
        finite=bool(np.all(np.isfinite(matrix))),
    )


def cross_relation_similarity(model: RelationEmbedder, num_nodes: int,
                              relations: Sequence[str]) -> np.ndarray:
    """|R| x |R| mean per-node cosine similarity between relation spaces.

    Values near 1 everywhere mean the model learned one embedding replicated
    per relationship (relationship-specificity failed); meaningfully lower
    off-diagonals mean relationships got distinct representations.
    """
    if len(relations) < 1:
        raise EvaluationError("need at least one relationship")
    nodes = np.arange(num_nodes)
    matrices = {
        rel: model.node_embeddings(nodes, rel) for rel in relations
    }
    normed = {}
    for rel, matrix in matrices.items():
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        normed[rel] = matrix / np.maximum(norms, 1e-12)
    out = np.eye(len(relations))
    for i, a in enumerate(relations):
        for j, b in enumerate(relations):
            if i >= j:
                continue
            value = float(np.einsum("ij,ij->i", normed[a], normed[b]).mean())
            out[i, j] = out[j, i] = value
    return out


def neighborhood_alignment(model: RelationEmbedder,
                           graph: MultiplexHeteroGraph,
                           relation: str,
                           sample_size: int = 200,
                           rng=None) -> float:
    """Mean margin between connected and random pairs' cosine similarity.

    Positive values mean embedding similarity tracks adjacency under the
    relationship — the minimum requirement for dot-product link prediction.
    """
    from repro.utils.rng import as_rng

    rng = as_rng(rng)
    src, dst = graph.edges(relation)
    if len(src) == 0:
        raise EvaluationError(f"relationship {relation!r} has no edges")
    take = min(sample_size, len(src))
    idx = rng.choice(len(src), size=take, replace=False)
    pos_u, pos_v = src[idx], dst[idx]
    rand_v = rng.integers(0, graph.num_nodes, size=take)

    def cosine(u_nodes, v_nodes):
        u_emb = model.node_embeddings(u_nodes, relation)
        v_emb = model.node_embeddings(v_nodes, relation)
        norms = (
            np.linalg.norm(u_emb, axis=1) * np.linalg.norm(v_emb, axis=1)
        )
        return np.einsum("ij,ij->i", u_emb, v_emb) / np.maximum(norms, 1e-12)

    return float(cosine(pos_u, pos_v).mean() - cosine(pos_u, rand_v).mean())
