"""Quantifying the multiplexity property of a graph (Sect. I / Def. 2).

The paper's motivation rests on two structural facts about its datasets:
node pairs are connected under several relationships at once, and
relationships correlate without being identical.  These functions measure
both, so a user can check whether *their* graph is multiplex enough for
HybridGNN's machinery to pay off — and so the dataset-alikes can be shown
to actually carry the property (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph


def _edge_key_sets(graph: MultiplexHeteroGraph) -> Dict[str, set]:
    keys: Dict[str, set] = {}
    n = graph.num_nodes
    for relation in graph.schema.relationships:
        src, dst = graph.edges(relation)
        low = np.minimum(src, dst)
        high = np.maximum(src, dst)
        keys[relation] = set((low * n + high).tolist())
    return keys


@dataclass(frozen=True)
class MultiplexityProfile:
    """Summary of how multiplex a graph is."""

    num_connected_pairs: int
    num_multiplex_pairs: int          # pairs connected under >= 2 relationships
    multiplexity_rate: float          # multiplex / connected
    max_relationships_per_pair: int
    relationship_jaccard: Dict[Tuple[str, str], float]

    def most_correlated(self) -> Tuple[Tuple[str, str], float]:
        """The relationship pair with the highest edge-set Jaccard."""
        pair = max(self.relationship_jaccard, key=self.relationship_jaccard.get)
        return pair, self.relationship_jaccard[pair]


def multiplexity_profile(graph: MultiplexHeteroGraph) -> MultiplexityProfile:
    """Measure pair-level multiplexity and relationship correlation."""
    key_sets = _edge_key_sets(graph)
    counts: Dict[int, int] = {}
    for keys in key_sets.values():
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
    num_connected = len(counts)
    num_multiplex = sum(1 for c in counts.values() if c >= 2)
    max_per_pair = max(counts.values(), default=0)

    jaccard: Dict[Tuple[str, str], float] = {}
    relations = graph.schema.relationships
    for i, a in enumerate(relations):
        for b in relations[i + 1:]:
            union = key_sets[a] | key_sets[b]
            if union:
                jaccard[(a, b)] = len(key_sets[a] & key_sets[b]) / len(union)
            else:
                jaccard[(a, b)] = 0.0

    return MultiplexityProfile(
        num_connected_pairs=num_connected,
        num_multiplex_pairs=num_multiplex,
        multiplexity_rate=num_multiplex / num_connected if num_connected else 0.0,
        max_relationships_per_pair=max_per_pair,
        relationship_jaccard=jaccard,
    )


def relationship_overlap_matrix(graph: MultiplexHeteroGraph) -> np.ndarray:
    """|R| x |R| matrix of edge-set Jaccard similarities (diagonal = 1)."""
    key_sets = _edge_key_sets(graph)
    relations = graph.schema.relationships
    matrix = np.eye(len(relations))
    for i, a in enumerate(relations):
        for j, b in enumerate(relations):
            if i >= j:
                continue
            union = key_sets[a] | key_sets[b]
            value = len(key_sets[a] & key_sets[b]) / len(union) if union else 0.0
            matrix[i, j] = matrix[j, i] = value
    return matrix


def relationship_degree_correlation(graph: MultiplexHeteroGraph) -> np.ndarray:
    """|R| x |R| Pearson correlation of per-node degrees across relationships.

    High values mean the same nodes are active everywhere (shared popularity);
    low values mean relationships engage different parts of the graph.
    """
    relations = graph.schema.relationships
    degrees = np.stack(
        [graph.degrees(rel).astype(np.float64) for rel in relations]
    )
    matrix = np.eye(len(relations))
    for i in range(len(relations)):
        for j in range(i + 1, len(relations)):
            a, b = degrees[i], degrees[j]
            if a.std() == 0 or b.std() == 0:
                value = 0.0
            else:
                value = float(np.corrcoef(a, b)[0, 1])
            matrix[i, j] = matrix[j, i] = value
    return matrix
