"""Graph and embedding analysis utilities.

Naming note: this package analyzes *results* — multiplexity structure of
the input graphs and the health/geometry of trained embeddings.  Static
analysis of the repository's own source code lives in :mod:`repro.lint`
(the ``python -m repro lint`` AST linter); the two are unrelated.
"""

from repro.analysis.multiplexity import (
    MultiplexityProfile,
    multiplexity_profile,
    relationship_degree_correlation,
    relationship_overlap_matrix,
)
from repro.analysis.embeddings import (
    EmbeddingHealth,
    cross_relation_similarity,
    embedding_health,
    neighborhood_alignment,
)

__all__ = [
    "MultiplexityProfile",
    "multiplexity_profile",
    "relationship_overlap_matrix",
    "relationship_degree_correlation",
    "EmbeddingHealth",
    "embedding_health",
    "cross_relation_similarity",
    "neighborhood_alignment",
]
