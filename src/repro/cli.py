"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the dataset-alikes with their Table II statistics.
``train``
    Train a model on a dataset-alike, report test metrics, optionally save
    a checkpoint and an embedding export.
``evaluate``
    Score a saved embedding export against a dataset split.
``recommend``
    Print top-K recommendations from a saved embedding export — one node
    via ``--node``, or many at once via ``--nodes`` (served by the batched
    engine in :mod:`repro.serving`); ``--index ivf|hnsw`` (with
    ``--nprobe`` / ``--ef-search``) swaps in a sub-linear approximate
    retrieval backend.
``serve-sim``
    Simulate mixed live traffic (recommend/similar reads interleaved with
    feedback writes, including cold-start nodes) against the online
    :class:`repro.serving.RecommendService` and print per-endpoint latency
    percentiles plus ingestion/compaction counters.
``schemes``
    Enumerate/suggest metapath schemes for a dataset-alike.
``table`` / ``figure``
    Regenerate one of the paper's tables or figures.
``verify``
    Run the correctness verification suites (gradcheck registry,
    differential oracles, index recall oracles, sharded-trainer parallel
    oracles, lock-discipline concurrency oracles, transfer-rule
    crosscheck, golden regression corpus); see TESTING.md.
``lint``
    Run the project's AST lint rules (R001-R017) over the source tree
    against the committed baseline; see TESTING.md.
``check-model``
    Statically check a model/dataset pair: trace one training step,
    abstractly re-propagate shapes/dtypes, and audit gradient flow,
    broadcasts, and memory (:mod:`repro.check`); see TESTING.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core import Recommender, export_embeddings, load_embeddings, save_checkpoint
from repro.datasets import available_datasets, load_dataset, split_edges
from repro.eval import evaluate_link_prediction, evaluate_ranking
from repro.experiments import MODEL_NAMES, get_profile, make_model
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.graph import compute_statistics, suggest_schemes
from repro.utils import format_table


def _add_common_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="taobao", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.25,
                        help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in available_datasets():
        dataset = load_dataset(name, scale=args.scale, seed=args.seed)
        stats = compute_statistics(dataset.graph)
        rows.append([
            name, stats.num_nodes, stats.num_edges, stats.num_node_types,
            stats.num_relationships, ", ".join(dataset.metapath_patterns),
        ])
    print(format_table(
        ["Dataset", "|V|", "|E|", "|O|", "|R|", "Schemes"], rows,
        title=f"Dataset-alikes (scale={args.scale})",
    ))
    return 0


def _fit_parallel(args: argparse.Namespace, profile, dataset, split):
    """Train shared skip-gram tables with the sharded multi-worker trainer."""
    from repro.train import ParallelSkipGramTrainer, ParallelTrainerConfig

    tc = profile.trainer
    config = ParallelTrainerConfig(
        workers=args.workers,
        update_mode=args.update_mode,
        dim=profile.hybrid.base_dim,
        epochs=tc.epochs,
        batch_size=tc.batch_size,
        learning_rate=tc.learning_rate,
        num_walks=tc.num_walks,
        walk_length=tc.walk_length,
        window=tc.window,
        patience=tc.patience,
    )
    print(f"training sharded skip-gram ({args.workers} workers, "
          f"{args.update_mode} updates, {profile.name} profile) ...")
    trainer = ParallelSkipGramTrainer(
        dataset.all_schemes(), split, config, rng=args.seed
    )
    history = trainer.fit()
    if history.val_scores:
        print(f"best val ROC-AUC {history.best_val_score:.2f}% "
              f"at epoch {history.best_epoch}")
    return trainer.embeddings()


def cmd_train(args: argparse.Namespace) -> int:
    import dataclasses

    profile = get_profile(args.profile)
    if args.resample_walks:
        profile = dataclasses.replace(
            profile,
            trainer=dataclasses.replace(
                profile.trainer, resample_walks_every=args.resample_walks
            ),
        )
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    split = split_edges(dataset.graph, rng=args.seed + 10_000)
    print(dataset.graph)
    if args.workers > 1:
        if args.model != "HybridGNN":
            print(f"note: --workers {args.workers} uses the sharded "
                  f"skip-gram trainer; --model {args.model} is ignored")
        model = _fit_parallel(args, profile, dataset, split)
    else:
        model = make_model(args.model, profile, args.seed)
        print(f"training {args.model} ({profile.name} profile) ...")
        model.fit(dataset, split)

    link = evaluate_link_prediction(model, split.test)
    rows = [
        [relation, m["roc_auc"], m["pr_auc"], m["f1"]]
        for relation, m in link.per_relation.items()
    ]
    rows.append(["OVERALL", link["roc_auc"], link["pr_auc"], link["f1"]])
    print(format_table(["Relation", "ROC-AUC", "PR-AUC", "F1"], rows,
                       title="Test link prediction (%)", float_fmt="{:.2f}"))
    ranking = evaluate_ranking(
        model, split.train_graph, split.test, k=args.k,
        max_sources=profile.ranking_max_sources,
    )
    print(format_table(
        ["Relation", f"PR@{args.k}", f"HR@{args.k}", "NDCG", "MRR"],
        [
            [rel, m["pr_at_k"], m["hr_at_k"], m["ndcg_at_k"], m["mrr"]]
            for rel, m in ranking.per_relation.items()
        ],
        title="Test top-K recommendation",
    ))

    if args.save_embeddings:
        written = export_embeddings(
            model, split.train_graph.num_nodes,
            split.train_graph.schema.relationships, args.save_embeddings,
        )
        print(f"embeddings written to {written}")
    if args.save_checkpoint:
        module = getattr(model, "module", None) or getattr(model, "_module", None)
        if module is None:
            print("note: this model kind has no checkpointable module; skipped")
        else:
            written = save_checkpoint(module, args.save_checkpoint)
            print(f"checkpoint written to {written}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    split = split_edges(dataset.graph, rng=args.seed + 10_000)
    store = load_embeddings(args.embeddings)
    link = evaluate_link_prediction(store, split.test)
    rows = [
        [relation, m["roc_auc"], m["pr_auc"], m["f1"]]
        for relation, m in link.per_relation.items()
    ]
    print(format_table(["Relation", "ROC-AUC", "PR-AUC", "F1"], rows,
                       title=f"Stored embeddings on {args.dataset}",
                       float_fmt="{:.2f}"))
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    if args.node is None and not args.nodes:
        print("error: pass --node ID or --nodes ID,ID,... for batch mode",
              file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    split = split_edges(dataset.graph, rng=args.seed + 10_000)
    store = load_embeddings(args.embeddings)
    engine_options: dict = {"index": args.index}
    index_params = {"seed": args.seed}
    if args.nprobe is not None:
        index_params["nprobe"] = args.nprobe
    if args.ef_search is not None:
        index_params["ef_search"] = args.ef_search
    engine_options["index_params"] = index_params
    recommender = Recommender(store, split.train_graph, engine_options)
    if args.nodes:
        sources = [int(token) for token in args.nodes.split(",") if token.strip()]
        lists = recommender.recommend_batch(sources, args.relation, k=args.k)
        rows = [
            [source, rec.node, rec.score]
            for source, recs in zip(sources, lists)
            for rec in recs
        ]
        print(format_table(
            ["Source", "Node", "Score"], rows,
            title=(f"Top-{args.k} {args.relation!r} recommendations "
                   f"for {len(sources)} nodes (batch)"),
        ))
        if args.stats:
            print(recommender.engine.profiler.summary())
            stats = recommender.engine.stats.to_dict()
            latency = stats["latency_ms"]
            print(
                f"requests {stats['requests']}, sources {stats['sources']}, "
                f"candidates scored {stats['candidates_scored']}, "
                f"index builds {stats['index_builds']}, "
                f"exact fallbacks {stats['exact_fallbacks']}; "
                f"request latency p50 {latency['p50']:.2f}ms / "
                f"p95 {latency['p95']:.2f}ms / p99 {latency['p99']:.2f}ms"
            )
        return 0
    recs = recommender.recommend(args.node, args.relation, k=args.k)
    rows = [[rec.node, rec.score] for rec in recs]
    print(format_table(
        ["Node", "Score"], rows,
        title=f"Top-{args.k} {args.relation!r} recommendations for node {args.node}",
    ))
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    """Drive the online service with a seeded mixed read/write trace."""
    import json

    from repro.serving import RecommendService, ServiceConfig
    from repro.serving.traffic import generate_trace, replay_trace
    from repro.utils.rng import as_rng

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph = dataset.graph
    if args.embeddings:
        store = load_embeddings(args.embeddings)
    else:
        # No export given: serve seeded random tables (traffic-shape runs).
        from repro.core.persistence import EmbeddingStore

        rng = as_rng((args.seed, 2026))
        store = EmbeddingStore({
            rel: rng.standard_normal((graph.num_nodes, args.dim))
            for rel in graph.schema.relationships
        })
    config = ServiceConfig(
        max_batch=args.max_batch,
        flush_interval=args.flush_interval,
        max_queue=args.max_queue,
        compaction_threshold=args.compaction_threshold,
        default_k=args.k,
    )
    service = RecommendService(store, graph, config=config)
    trace = generate_trace(
        graph, args.ops, seed=args.seed,
        read_fraction=args.read_fraction,
        new_node_rate=args.new_node_rate, k=args.k,
    )
    print(f"replaying {len(trace)} ops on {args.dataset} "
          f"(|V|={graph.num_nodes}, |E|={graph.num_edges}) ...")
    summary = replay_trace(service, trace)
    report = service.stats_report()
    rows = []
    for endpoint, stats in report["endpoints"].items():
        latency = stats["latency_ms"]
        rows.append([
            endpoint, stats["requests"], stats["batches"], stats["rejected"],
            latency["p50"], latency["p95"], latency["p99"],
        ])
    print(format_table(
        ["Endpoint", "Requests", "Batches", "Rejected",
         "p50 ms", "p95 ms", "p99 ms"],
        rows, title="Per-endpoint service latency", float_fmt="{:.3f}",
    ))
    ingestion = report["ingestion"]
    print(
        f"ingested {ingestion['edges_ingested']} edges, "
        f"{ingestion['nodes_ingested']} cold-start nodes, "
        f"{ingestion['compactions']} compactions "
        f"({ingestion['duplicates_dropped']} duplicates dropped); "
        f"result digest {summary['digest'][:16]}..."
    )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump({"summary": summary, "report": report}, handle,
                      indent=2, default=str)
        print(f"report written to {args.report}")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    relation = args.relation or dataset.graph.schema.relationships[0]
    suggestions = suggest_schemes(
        dataset.graph, relation, max_length=args.max_length, top=args.top,
        rng=args.seed,
    )
    rows = [[s.scheme.describe(), s.coverage] for s in suggestions]
    print(format_table(
        ["Scheme", "Coverage"], rows,
        title=f"Suggested metapath schemes for {relation!r} on {args.dataset}",
    ))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro import verify as verify_mod

    suites = (
        ["gradcheck", "oracles", "index", "service", "parallel",
         "concurrency", "alloc", "transfer", "golden"]
        if args.suite == "all"
        else [args.suite]
    )
    datasets = [d for d in args.datasets.split(",") if d] or None
    models = [m for m in args.models.split(",") if m] or None
    report: dict = {"seed": args.seed, "suites": {}}
    ok = True

    if args.refresh_golden:
        entries = verify_mod.refresh_golden(
            datasets=datasets, models=models, seed=args.seed, verbose=True
        )
        print(f"refreshed {len(entries)} golden entries in {verify_mod.golden_dir()}")
        suites = [s for s in suites if s != "golden"] if args.suite == "all" else []

    if args.refresh_alloc_budgets:
        from repro.perf import default_budget_path

        budgets = verify_mod.refresh_alloc_budgets()
        print(
            f"refreshed {len(budgets)} allocation budgets in "
            f"{default_budget_path()}"
        )
        suites = [s for s in suites if s != "alloc"] if args.suite == "all" else []

    if "gradcheck" in suites:
        missing = verify_mod.uncovered_targets()
        reports = verify_mod.run_gradcheck_suite(seed=args.seed)
        failed = [r for r in reports if not r.passed]
        for r in failed:
            print(r.summary())
        print(
            f"gradcheck: {len(reports) - len(failed)}/{len(reports)} cases passed, "
            f"{len(missing)} uncovered targets"
            + (f" ({', '.join(missing)})" if missing else "")
        )
        ok &= not failed and not missing
        report["suites"]["gradcheck"] = {
            "uncovered_targets": missing,
            "cases": [r.to_dict() for r in reports],
        }

    if "oracles" in suites:
        results = verify_mod.run_oracle_suite(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["oracles"] = [r.to_dict() for r in results]

    if "index" in suites:
        results = verify_mod.index_oracles(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["index"] = [r.to_dict() for r in results]

    if "service" in suites:
        results = verify_mod.service_oracles(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["service"] = [r.to_dict() for r in results]

    if "parallel" in suites:
        results = verify_mod.parallel_oracles(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["parallel"] = [r.to_dict() for r in results]

    if "concurrency" in suites:
        results = verify_mod.concurrency_oracles(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["concurrency"] = [r.to_dict() for r in results]

    if "alloc" in suites:
        results = verify_mod.alloc_oracles(seed=args.seed)
        print(verify_mod.format_oracle_table(results))
        ok &= all(r.passed for r in results)
        report["suites"]["alloc"] = [r.to_dict() for r in results]

    if "transfer" in suites:
        # Lazy import: the static checker is not needed by the other suites.
        from repro.check import format_transfer_table, run_transfer_suite

        checks = run_transfer_suite(seed=args.seed)
        print(format_transfer_table(checks))
        ok &= all(c.passed for c in checks)
        report["suites"]["transfer"] = [c.to_dict() for c in checks]

    if "golden" in suites:
        checks = verify_mod.verify_golden(
            datasets=datasets, models=models, verbose=True
        )
        print(verify_mod.format_golden_table(checks))
        ok &= all(c.passed for c in checks)
        report["suites"]["golden"] = [c.to_dict() for c in checks]

    report["passed"] = bool(ok)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.report}")
    return 0 if ok else 1


def cmd_check_model(args: argparse.Namespace) -> int:
    # Imported lazily: the static checker pulls in the verification
    # registry, which no other command needs.
    from repro.check import check_model, format_json, format_text, run_self_test

    if args.self_test:
        ok, messages, reports = run_self_test(seed=args.seed)
        if args.format == "json":
            print(format_json([reports["stock"], reports["miswired"]], strict=True))
        else:
            for report in (reports["stock"], reports["miswired"]):
                print(format_text(report, strict=True))
        for message in messages:
            print(f"self-test: {message}", file=sys.stderr)
        print("self-test: " + ("ok" if ok else "FAILED"), file=sys.stderr)
        return 0 if ok else 1

    report = check_model(
        model=args.model,
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        profile=args.profile,
    )
    if args.format == "json":
        print(format_json([report], strict=args.strict))
    else:
        print(format_text(report, strict=args.strict))
    return 0 if report.passed(strict=args.strict) else 1


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter (and the registry introspection R006
    # pulls in) is not needed by any other command.
    from repro.lint.cli import cmd_lint as run

    return run(args)


_TABLES = {
    "3": lambda profile: tables_mod.render_link_prediction(
        tables_mod.table3(profile=profile), "Table III"),
    "4": lambda profile: tables_mod.render_link_prediction(
        tables_mod.table4(profile=profile), "Table IV"),
    "5": lambda profile: tables_mod.render_table5(tables_mod.table5(profile=profile)),
    "6": lambda profile: tables_mod.render_table6(tables_mod.table6(profile=profile)),
    "7": lambda profile: tables_mod.render_table7(tables_mod.table7(profile=profile)),
    "8": lambda profile: tables_mod.render_table8(tables_mod.table8(profile=profile)),
}

_FIGURES = {
    "4": lambda profile: figures_mod.render_figure4(figures_mod.figure4(profile=profile)),
    "5": lambda profile: figures_mod.render_figure5(figures_mod.figure5(profile=profile)),
    "6": lambda profile: figures_mod.render_figure6(figures_mod.figure6(profile=profile)),
}


def cmd_table(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    print(_TABLES[args.number](profile))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    print(_FIGURES[args.number](profile))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HybridGNN reproduction (ICDE 2022) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list dataset-alikes and statistics")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("train", help="train a model and report test metrics")
    _add_common_dataset_args(p)
    p.add_argument("--model", default="HybridGNN", choices=MODEL_NAMES)
    p.add_argument("--profile", default="", help="smoke (default) or paper")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--save-embeddings", default="",
                   help="path for an .npz export (.npz is appended when missing)")
    p.add_argument("--save-checkpoint", default="",
                   help="path for an .npz checkpoint (.npz is appended when "
                        "missing; the path actually written is printed)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes; >1 trains shared skip-gram tables "
                        "with the sharded trainer (repro.train.parallel)")
    p.add_argument("--update-mode", default="hogwild",
                   choices=["hogwild", "average"],
                   help="multi-worker update rule: lock-free hogwild or "
                        "periodic parameter averaging (see DESIGN.md)")
    p.add_argument("--resample-walks", type=int, default=0,
                   help="regenerate random walks every N epochs "
                        "(0 = walk once and reuse, the default)")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved embedding export")
    _add_common_dataset_args(p)
    p.add_argument("--embeddings", required=True)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("recommend", help="top-K recommendations from an export")
    _add_common_dataset_args(p)
    p.add_argument("--embeddings", required=True,
                   help="embedding export path (.npz appended when missing)")
    p.add_argument("--node", type=int, default=None,
                   help="single source node id")
    p.add_argument("--nodes", default="",
                   help="comma-separated node ids: batch mode through the "
                        "vectorised serving engine")
    p.add_argument("--relation", required=True)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--stats", action="store_true",
                   help="print serving-engine stage timings after a batch")
    p.add_argument("--index", default="exact",
                   choices=["exact", "ivf", "hnsw"],
                   help="retrieval backend: exact brute force (default), or "
                        "an approximate sub-linear index (recall-gated by "
                        "'repro verify --suite index')")
    p.add_argument("--nprobe", type=int, default=None,
                   help="ivf: clusters probed per query (higher = better "
                        "recall, more candidates scored)")
    p.add_argument("--ef-search", type=int, default=None,
                   help="hnsw: beam width during search (higher = better "
                        "recall, slower)")
    p.set_defaults(func=cmd_recommend)

    p = sub.add_parser("serve-sim",
                       help="simulate mixed live traffic on the online service")
    _add_common_dataset_args(p)
    p.add_argument("--embeddings", default="",
                   help="embedding export to serve (seeded random tables "
                        "when omitted)")
    p.add_argument("--ops", type=int, default=500,
                   help="trace length (reads + feedback writes)")
    p.add_argument("--read-fraction", type=float, default=0.7)
    p.add_argument("--new-node-rate", type=float, default=0.05,
                   help="fraction of writes that introduce a cold-start node")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--dim", type=int, default=16,
                   help="embedding dim for seeded random tables")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--flush-interval", type=float, default=0.0,
                   help="micro-batch flush deadline in seconds (0 = "
                        "synchronous)")
    p.add_argument("--max-queue", type=int, default=256)
    p.add_argument("--compaction-threshold", type=int, default=512)
    p.add_argument("--report", default="", help="path for a JSON report")
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser("schemes", help="suggest metapath schemes")
    _add_common_dataset_args(p)
    p.add_argument("--relation", default="")
    p.add_argument("--max-length", type=int, default=2)
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=cmd_schemes)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", choices=sorted(_TABLES))
    p.add_argument("--profile", default="")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("verify", help="run the correctness verification suites")
    p.add_argument("--suite", default="all",
                   choices=["all", "gradcheck", "oracles", "index",
                            "service", "parallel", "concurrency",
                            "alloc", "transfer", "golden"])
    p.add_argument("--refresh-golden", action="store_true",
                   help="re-snapshot the golden corpus instead of checking it")
    p.add_argument("--refresh-alloc-budgets", action="store_true",
                   help="re-measure the canonical workloads and rewrite "
                        "benchmarks/alloc_budgets.json instead of checking it")
    p.add_argument("--datasets", default="",
                   help="comma-separated dataset subset for the golden suite")
    p.add_argument("--models", default="",
                   help="comma-separated model subset for the golden suite")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", default="", help="path for a JSON report")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("check-model",
                       help="statically check a model's op graph (no training)")
    _add_common_dataset_args(p)
    from repro.check.runner import CHECKABLE_MODELS

    p.add_argument("--model", default="HybridGNN", choices=list(CHECKABLE_MODELS))
    p.add_argument("--profile", default="", help="smoke (default) or paper")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--strict", action="store_true",
                   help="treat warnings (C003-C006) as failures")
    p.add_argument("--self-test", action="store_true",
                   help="audit the seeded mis-wired HybridGNN variant instead: "
                        "the stock model must pass, the variant must be flagged")
    p.set_defaults(func=cmd_check_model)

    p = sub.add_parser("lint", help="run the project linter (AST rules R001-R017)")
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", choices=sorted(_FIGURES))
    p.add_argument("--profile", default="")
    p.set_defaults(func=cmd_figure)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
