"""Concurrency lint rules (R009–R012) for the threaded/forked stack.

Static counterpart of the runtime sanitizer in
:mod:`repro.utils.concurrency`.  Four rules cover the bug classes the
concurrent serving/training paths invite:

======  ==============================================================
R009    mutation of a guarded attribute outside its declared lock scope
R010    fork-unsafe state inside multiprocessing worker functions
R011    a numpy ``Generator`` shared across thread/worker boundaries
R012    blocking calls while holding a lock/condition
======  ==============================================================

R009 is driven by two in-source annotations:

- ``# repro-lint: guarded-by=<lock>`` on a ``self.<attr> = ...``
  declaration line maps that attribute to the ``self.<lock>`` that must
  be held (lexically, via ``with self.<lock>:``) around every mutation.
  A guard of the form ``external:<holder>`` declares state serialised by
  a lock the class does not own; such mutations can never be lexically
  proven safe, so the sanctioned sites are carried in the lint baseline
  with their justification.
- ``# repro-lint: holds=<lock>[,<lock>]`` on a ``def`` line declares
  that every caller of that helper already holds the listed locks (the
  classic "caller must hold" docstring contract, made machine-readable).

The rules are lexical: they track ``with`` nesting and simple local
aliases (``stats = self.endpoint_stats[k]``), not inter-procedural
data flow.  The runtime sanitizer covers what they cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.base import Rule, dotted
from repro.lint.engine import FileContext, Finding

__all__ = [
    "CONCURRENCY_RULES",
    "BlockingUnderLockRule",
    "ForkSafetyRule",
    "GuardedAttributeRule",
    "SharedGeneratorRule",
]

_GUARD_RE = re.compile(r"#\s*repro-lint:\s*guarded-by=([A-Za-z0-9_.:-]+)")
_HOLDS_RE = re.compile(r"#\s*repro-lint:\s*holds=([A-Za-z0-9_,\s]+)")

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _bound_names(func: ast.AST) -> Set[str]:
    """Parameter and locally-assigned names of a function or lambda."""
    bound: Set[str] = set()
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)
            elif isinstance(node, ast.arg):
                bound.add(node.arg)
    return bound


def _imports_any(tree: ast.AST, modules: Tuple[str, ...]) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] in modules for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in modules:
                return True
    return False


def _walk_skipping_lambdas(node: ast.AST):
    """``ast.walk`` that does not descend into lambdas / nested defs.

    Used where "executes here, now" matters: code inside a lambda or a
    nested ``def`` runs later, under whatever locks its eventual caller
    holds, so lexical held-lock state does not apply to it.
    """
    todo = [node]
    while todo:
        current = todo.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.Lambda,) + _FUNCTION_DEFS):
                continue
            todo.append(child)


class GuardedAttributeRule(Rule):
    """R009: guarded attributes must be mutated under their declared lock."""

    code = "R009"
    name = "guarded-attribute"
    hint = (
        "mutate the attribute inside `with self.<lock>:`, or mark the "
        "helper `# repro-lint: holds=<lock>` when every caller already "
        "holds it; externally-serialised state (guarded-by=external:...) "
        "is carried in the lint baseline with its justification"
    )

    # Method names whose call mutates the receiver.  Generic container
    # mutators plus the domain mutators of the graph view / stats types.
    _MUTATORS = frozenset({
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "appendleft",
        "extendleft", "record_latency", "add_edge", "add_node",
        "compact", "maybe_compact",
    })
    _SKIP_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

    def check(self, ctx: FileContext) -> List[Finding]:
        marks: Dict[int, str] = {}
        for number, line in enumerate(ctx.lines, start=1):
            match = _GUARD_RE.search(line)
            if match:
                marks[number] = match.group(1)
        if not marks:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(ctx, node, marks, findings)
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     marks: Dict[int, str], out: List[Finding]) -> None:
        guard_map: Dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.lineno in marks:
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        guard_map[target.attr] = marks[node.lineno]
        if not guard_map:
            return
        for member in cls.body:
            if isinstance(member, _FUNCTION_DEFS) and \
                    member.name not in self._SKIP_METHODS:
                held = self._holds(ctx, member)
                self._scan(ctx, cls, member, member.body, held, {},
                           guard_map, out)

    @staticmethod
    def _holds(ctx: FileContext, func: ast.AST) -> Set[str]:
        line = ctx.lines[func.lineno - 1] if func.lineno <= len(ctx.lines) else ""
        match = _HOLDS_RE.search(line)
        if not match:
            return set()
        return {part.strip() for part in match.group(1).split(",") if part.strip()}

    @staticmethod
    def _lock_attr(expr: ast.AST) -> Optional[str]:
        name = dotted(expr)
        if name and name.startswith("self."):
            return name[len("self."):]
        return name

    def _guarded_root(self, node: ast.AST, guard_map: Dict[str, str],
                      aliases: Dict[str, str],
                      allow_bare: bool = False) -> Optional[str]:
        """The guarded attribute a chain like ``self.a[k].b`` roots in.

        ``allow_bare`` resolves a terminal bare name through the alias
        map; it is off for plain store targets (rebinding a local alias
        is not a mutation) and forced on once the chain descends through
        a subscript or call (``s[k] = 1`` does mutate the aliased
        container).
        """
        while True:
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id == "self":
                        return node.attr if node.attr in guard_map else None
                    return aliases.get(base.id)
                node = base
            elif isinstance(node, ast.Subscript):
                node = node.value
                allow_bare = True
            elif isinstance(node, ast.Call):
                node = node.func
                allow_bare = True
            elif isinstance(node, ast.Name):
                if allow_bare and node.id != "self":
                    return aliases.get(node.id)
                return None
            else:
                return None

    def _scan(self, ctx: FileContext, cls: ast.ClassDef, method: ast.AST,
              stmts: List[ast.stmt], held: Set[str], aliases: Dict[str, str],
              guard_map: Dict[str, str], out: List[Finding]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set()
                for item in stmt.items:
                    lock = self._lock_attr(item.context_expr)
                    if lock:
                        acquired.add(lock)
                self._scan(ctx, cls, method, stmt.body, held | acquired,
                           aliases, guard_map, out)
            elif isinstance(stmt, _FUNCTION_DEFS):
                # A nested def runs later, under its caller's locks; only
                # its own holds marker counts.
                self._scan(ctx, cls, stmt, stmt.body,
                           self._holds(ctx, stmt), {}, guard_map, out)
            elif isinstance(stmt, ast.ClassDef):
                continue
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_expr(ctx, cls, method, stmt.test, held, aliases,
                                guard_map, out)
                self._scan(ctx, cls, method, stmt.body, held, aliases,
                           guard_map, out)
                self._scan(ctx, cls, method, stmt.orelse, held, aliases,
                           guard_map, out)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(ctx, cls, method, stmt.iter, held, aliases,
                                guard_map, out)
                self._scan(ctx, cls, method, stmt.body, held, aliases,
                           guard_map, out)
                self._scan(ctx, cls, method, stmt.orelse, held, aliases,
                           guard_map, out)
            elif isinstance(stmt, ast.Try):
                self._scan(ctx, cls, method, stmt.body, held, aliases,
                           guard_map, out)
                for handler in stmt.handlers:
                    self._scan(ctx, cls, method, handler.body, held, aliases,
                               guard_map, out)
                self._scan(ctx, cls, method, stmt.orelse, held, aliases,
                           guard_map, out)
                self._scan(ctx, cls, method, stmt.finalbody, held, aliases,
                           guard_map, out)
            else:
                self._scan_stmt(ctx, cls, method, stmt, held, aliases,
                                guard_map, out)

    def _scan_stmt(self, ctx: FileContext, cls: ast.ClassDef, method: ast.AST,
                   stmt: ast.stmt, held: Set[str], aliases: Dict[str, str],
                   guard_map: Dict[str, str], out: List[Finding]) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_store(ctx, cls, method, stmt, target, held,
                                  aliases, guard_map, out)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                root = self._guarded_root(stmt.value, guard_map, aliases)
                if root:
                    aliases[stmt.targets[0].id] = root
                else:
                    aliases.pop(stmt.targets[0].id, None)
            self._scan_expr(ctx, cls, method, stmt.value, held, aliases,
                            guard_map, out)
        elif isinstance(stmt, ast.AnnAssign):
            self._check_store(ctx, cls, method, stmt, stmt.target, held,
                              aliases, guard_map, out)
            if stmt.value is not None:
                self._scan_expr(ctx, cls, method, stmt.value, held, aliases,
                                guard_map, out)
        elif isinstance(stmt, ast.AugAssign):
            self._check_store(ctx, cls, method, stmt, stmt.target, held,
                              aliases, guard_map, out)
            self._scan_expr(ctx, cls, method, stmt.value, held, aliases,
                            guard_map, out)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(ctx, cls, method, stmt, target, held,
                                  aliases, guard_map, out)
        else:
            self._scan_expr(ctx, cls, method, stmt, held, aliases,
                            guard_map, out)

    def _check_store(self, ctx: FileContext, cls: ast.ClassDef,
                     method: ast.AST, stmt: ast.stmt, target: ast.AST,
                     held: Set[str], aliases: Dict[str, str],
                     guard_map: Dict[str, str], out: List[Finding]) -> None:
        attr = self._guarded_root(target, guard_map, aliases)
        if attr is None:
            return
        self._report(ctx, cls, method, stmt, attr, guard_map[attr], held, out)

    def _scan_expr(self, ctx: FileContext, cls: ast.ClassDef, method: ast.AST,
                   expr: ast.AST, held: Set[str], aliases: Dict[str, str],
                   guard_map: Dict[str, str], out: List[Finding]) -> None:
        for node in _walk_skipping_lambdas(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._MUTATORS:
                attr = self._guarded_root(func.value, guard_map, aliases,
                                          allow_bare=True)
                if attr is not None:
                    self._report(ctx, cls, method, node, attr,
                                 guard_map[attr], held, out)

    def _report(self, ctx: FileContext, cls: ast.ClassDef, method: ast.AST,
                node: ast.AST, attr: str, lock: str, held: Set[str],
                out: List[Finding]) -> None:
        where = f"{cls.name}.{getattr(method, 'name', '<lambda>')}"
        if lock.startswith("external:"):
            out.append(self.finding(
                ctx, node,
                f"externally-serialised attribute 'self.{attr}' mutated in "
                f"{where} (guarded-by={lock})",
            ))
        elif lock not in held:
            out.append(self.finding(
                ctx, node,
                f"guarded attribute 'self.{attr}' mutated outside "
                f"'with self.{lock}:' in {where}",
            ))


class ForkSafetyRule(Rule):
    """R010: fork workers must be pure functions of pre-fork state + rng."""

    code = "R010"
    name = "fork-safety"
    hint = (
        "fork workers inherit copies of parent state: threading "
        "primitives do not survive the fork, module-level RNGs replay "
        "the same stream in every child, and returned values are "
        "discarded — take a spawned rng parameter and publish results "
        "through the shared RawArray-backed buffers"
    )

    _RNG_PREFIXES = ("np.random.", "numpy.random.", "random.")
    _RNG_FACTORIES = {"default_rng", "as_rng", "spawn_rng", "RandomState"}

    def check(self, ctx: FileContext) -> List[Finding]:
        if not _imports_any(ctx.tree, ("multiprocessing",)):
            return []
        module_rngs = self._module_rngs(ctx.tree)
        findings: List[Finding] = []
        for worker in self._worker_functions(ctx.tree):
            self._check_worker(ctx, worker, module_rngs, findings)
        return findings

    def _module_rngs(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Call):
                continue
            fn = dotted(node.value.func) or ""
            if any(fn.startswith(p) for p in self._RNG_PREFIXES) or \
                    fn.split(".")[-1] in self._RNG_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _worker_functions(tree: ast.Module) -> List[ast.AST]:
        targeted: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    (dotted(node.func) or "").endswith("Process"):
                for keyword in node.keywords:
                    if keyword.arg == "target" and \
                            isinstance(keyword.value, ast.Name):
                        targeted.add(keyword.value.id)
        workers = []
        for node in ast.walk(tree):
            if isinstance(node, _FUNCTION_DEFS) and (
                    node.name.startswith("_worker") or
                    node.name.endswith("_worker") or
                    node.name in targeted):
                workers.append(node)
        return workers

    def _check_worker(self, ctx: FileContext, worker: ast.AST,
                      module_rngs: Set[str], out: List[Finding]) -> None:
        label = worker.name
        for node in ast.walk(worker):
            if isinstance(node, ast.Attribute):
                name = dotted(node) or ""
                if name.startswith("threading."):
                    out.append(self.finding(
                        ctx, node,
                        f"worker function '{label}' touches threading "
                        f"primitive '{name}' (thread state does not "
                        f"survive fork)",
                    ))
            elif isinstance(node, ast.Call):
                fn = dotted(node.func) or ""
                if any(fn.startswith(p) for p in self._RNG_PREFIXES):
                    out.append(self.finding(
                        ctx, node,
                        f"module-level RNG call '{fn}()' in worker "
                        f"function '{label}' (fork replays the same "
                        f"stream in every child)",
                    ))
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and node.id in module_rngs:
                out.append(self.finding(
                    ctx, node,
                    f"module-level RNG '{node.id}' used in worker "
                    f"function '{label}' (fork replays the same stream "
                    f"in every child)",
                ))
        for node in _walk_skipping_lambdas(worker):
            if node is worker:
                continue
            if isinstance(node, _FUNCTION_DEFS):
                continue
            if isinstance(node, ast.Return) and node.value is not None and \
                    not (isinstance(node.value, ast.Constant) and
                         node.value.value is None):
                out.append(self.finding(
                    ctx, node,
                    f"worker function '{label}' returns a value; fork "
                    f"worker results are discarded and RawArray-backed "
                    f"views must not escape — publish through the shared "
                    f"buffers",
                ))


class SharedGeneratorRule(Rule):
    """R011: one RNG stream per worker, derived via ``spawn_rngs``."""

    code = "R011"
    name = "shared-rng"
    hint = (
        "derive per-worker streams with repro.utils.rng.spawn_rngs(rng, n) "
        "and index the pool inside each closure (rngs[w]); a Generator "
        "shared across threads/workers interleaves nondeterministically "
        "and can tear its internal state"
    )

    _SINGLE_FACTORIES = {"as_rng", "spawn_rng", "default_rng"}
    _PARENT_ATTRS = {"self._rng", "self.rng"}

    def check(self, ctx: FileContext) -> List[Finding]:
        if not _imports_any(ctx.tree, ("threading", "multiprocessing",
                                       "concurrent")):
            return []
        single, pools = self._rng_names(ctx.tree)
        findings: List[Finding] = []
        for closure in self._loop_closures(ctx.tree):
            self._check_closure(ctx, closure, single, pools, findings)
        return findings

    def _rng_names(self, tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        single: Set[str] = set()
        pools: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1 or \
                    not isinstance(node.targets[0], ast.Name) or \
                    not isinstance(node.value, ast.Call):
                continue
            fn = dotted(node.value.func) or ""
            base = fn.split(".")[-1]
            target = node.targets[0].id
            if base == "spawn_rngs":
                pools.add(target)
                single.discard(target)
            elif base in self._SINGLE_FACTORIES:
                single.add(target)
                pools.discard(target)
        return single, pools

    @staticmethod
    def _loop_closures(tree: ast.Module) -> List[ast.AST]:
        closures: List[ast.AST] = []
        seen: Set[int] = set()
        for node in ast.walk(tree):
            bodies: List[List[ast.stmt]] = []
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                bodies.append(node.body)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for sub in ast.walk(node.elt):
                    if isinstance(sub, ast.Lambda) and id(sub) not in seen:
                        seen.add(id(sub))
                        closures.append(sub)
                continue
            else:
                continue
            for stmt in bodies[0]:
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Lambda,) + _FUNCTION_DEFS) and \
                            id(sub) not in seen:
                        seen.add(id(sub))
                        closures.append(sub)
        return closures

    def _check_closure(self, ctx: FileContext, closure: ast.AST,
                       single: Set[str], pools: Set[str],
                       out: List[Finding]) -> None:
        label = getattr(closure, "name", "<lambda>")
        bound = _bound_names(closure)
        body = closure.body if isinstance(closure.body, list) else [closure.body]
        reported: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Load) and \
                        node.id in single and node.id not in bound and \
                        node.id not in reported:
                    reported.add(node.id)
                    out.append(self.finding(
                        ctx, node,
                        f"Generator '{node.id}' captured by per-worker "
                        f"closure '{label}' without going through "
                        f"spawn_rngs",
                    ))
                elif isinstance(node, ast.Attribute):
                    name = dotted(node) or ""
                    if name in self._PARENT_ATTRS and name not in reported:
                        reported.add(name)
                        out.append(self.finding(
                            ctx, node,
                            f"parent RNG '{name}' captured by per-worker "
                            f"closure '{label}' without going through "
                            f"spawn_rngs",
                        ))


class BlockingUnderLockRule(Rule):
    """R012: no blocking calls while a lock/condition is held."""

    code = "R012"
    name = "blocking-under-lock"
    hint = (
        "move the blocking call outside the critical section (or use the "
        "held condition's own wait(), which releases the lock while "
        "sleeping); blocking under a service lock stalls every thread "
        "contending for it"
    )

    _LOCKISH = re.compile(r"(lock|cond|mutex|sem)", re.IGNORECASE)
    _BLOCKING = {"time.sleep", "input", "os.system", "os.wait",
                 "select.select"}
    _PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.")

    def check(self, ctx: FileContext) -> List[Finding]:
        sleep_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or alias.name)
        findings: List[Finding] = []
        self._scan(ctx, ctx.tree.body, frozenset(), sleep_aliases, findings)
        return findings

    def _lock_names(self, items: List[ast.withitem]) -> Set[str]:
        names = set()
        for item in items:
            name = dotted(item.context_expr)
            if name and self._LOCKISH.search(name.split(".")[-1]):
                names.add(name)
        return names

    def _scan(self, ctx: FileContext, stmts: List[ast.stmt],
              held: frozenset, sleep_aliases: Set[str],
              out: List[Finding]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if held:
                        self._check_calls(ctx, item.context_expr, held,
                                          sleep_aliases, out)
                self._scan(ctx, stmt.body, held | self._lock_names(stmt.items),
                           sleep_aliases, out)
            elif isinstance(stmt, _FUNCTION_DEFS + (ast.ClassDef,)):
                # A nested def/class body executes later, not under the
                # lexically-enclosing lock.
                self._scan(ctx, stmt.body, frozenset(), sleep_aliases, out)
            elif isinstance(stmt, (ast.If, ast.While)):
                if held:
                    self._check_calls(ctx, stmt.test, held, sleep_aliases, out)
                self._scan(ctx, stmt.body, held, sleep_aliases, out)
                self._scan(ctx, stmt.orelse, held, sleep_aliases, out)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if held:
                    self._check_calls(ctx, stmt.iter, held, sleep_aliases, out)
                self._scan(ctx, stmt.body, held, sleep_aliases, out)
                self._scan(ctx, stmt.orelse, held, sleep_aliases, out)
            elif isinstance(stmt, ast.Try):
                self._scan(ctx, stmt.body, held, sleep_aliases, out)
                for handler in stmt.handlers:
                    self._scan(ctx, handler.body, held, sleep_aliases, out)
                self._scan(ctx, stmt.orelse, held, sleep_aliases, out)
                self._scan(ctx, stmt.finalbody, held, sleep_aliases, out)
            elif held:
                self._check_calls(ctx, stmt, held, sleep_aliases, out)

    def _check_calls(self, ctx: FileContext, node: ast.AST, held: frozenset,
                     sleep_aliases: Set[str], out: List[Finding]) -> None:
        for sub in _walk_skipping_lambdas(node):
            if not isinstance(sub, ast.Call):
                continue
            label = self._blocking_label(sub, held, sleep_aliases)
            if label is not None:
                locks = ", ".join(sorted(held))
                out.append(self.finding(
                    ctx, sub,
                    f"blocking call '{label}' while holding {locks}",
                ))

    def _blocking_label(self, call: ast.Call, held: frozenset,
                        sleep_aliases: Set[str]) -> Optional[str]:
        fn = dotted(call.func) or ""
        if fn in self._BLOCKING or fn in sleep_aliases or fn == "open":
            return f"{fn}()"
        if any(fn.startswith(prefix) for prefix in self._PREFIXES):
            return f"{fn}()"
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        base = dotted(func.value)
        if func.attr in ("wait", "wait_for"):
            # cond.wait() releases the lock it waits on: legal on a lock
            # that is itself held, blocking on anything else.
            if base in held:
                return None
            return f"{base or '<expr>'}.{func.attr}()"
        if func.attr == "join":
            if base and base.startswith("os.path"):
                return None
            if isinstance(func.value, ast.Constant) and \
                    isinstance(func.value.value, str):
                return None
            if len(call.args) == 0 and not call.keywords:
                return f"{base or '<expr>'}.join()"
            if len(call.args) == 1 and not call.keywords and \
                    isinstance(call.args[0], ast.Constant) and \
                    isinstance(call.args[0].value, (int, float)):
                return f"{base or '<expr>'}.join(timeout)"
            return None
        if func.attr == "result" and not call.args and not call.keywords:
            return f"{base or '<expr>'}.result()"
        return None


CONCURRENCY_RULES = (
    GuardedAttributeRule,
    ForkSafetyRule,
    SharedGeneratorRule,
    BlockingUnderLockRule,
)
