"""Committed lint baseline: existing debt, made explicit.

The baseline file (``src/repro/lint/baseline.json``) lists findings that
are deliberately kept, each with a reason.  ``repro lint`` subtracts them
from the actionable set; ``--strict`` additionally fails when a baseline
entry no longer matches anything (stale debt must be deleted, not hoarded).

Entries are keyed by ``(code, path, message)`` rather than line numbers so
unrelated edits do not invalidate them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.engine import Finding

__all__ = ["BaselineEntry", "default_baseline_path", "load_baseline", "apply_baseline"]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding; ``reason`` documents why it stays."""

    code: str
    path: str
    message: str
    reason: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.code, self.path, self.message)

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Optional[Path] = None) -> List[BaselineEntry]:
    """Load baseline entries; a missing file is an empty baseline."""
    path = Path(path) if path is not None else default_baseline_path()
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload["entries"] if isinstance(payload, dict) else payload
    return [
        BaselineEntry(
            code=entry["code"],
            path=entry["path"],
            message=entry["message"],
            reason=entry.get("reason", ""),
        )
        for entry in entries
    ]


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (actionable, baselined); also return stale entries.

    A baseline entry is *stale* when no current finding matches it — the
    debt it recorded was paid off and the entry should be removed.
    """
    by_key = {entry.key: entry for entry in entries}
    actionable: List[Finding] = []
    baselined: List[Finding] = []
    used = set()
    for finding in findings:
        if finding.key in by_key:
            baselined.append(finding)
            used.add(finding.key)
        else:
            actionable.append(finding)
    stale = [entry for entry in entries if entry.key not in used]
    return actionable, baselined, stale
