"""Shared scaffolding for lint rules.

Lives in its own module so rule packs (:mod:`repro.lint.rules`,
:mod:`repro.lint.concurrency`) can share the :class:`Rule` base class and
AST helpers without importing each other — ``rules`` aggregates the packs
into the ``RULES`` registry, so anything both packs need must sit below
them in the import graph.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.engine import FileContext, Finding

__all__ = ["Rule", "dotted"]


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule:
    """One lint rule: a stable code, a fix hint, and an AST check."""

    code: str = ""
    name: str = ""
    hint: str = ""

    def applies_to(self, rel_path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )
