"""Project-specific AST lint rules for the HybridGNN reproduction.

Each rule encodes a bug class this repository has actually shipped (or
depends on never shipping):

======  ==============================================================
R001    bare ``np.random.*`` / ``random.*`` calls outside ``utils/rng.py``
        (breaks single-seed determinism)
R002    mutable default arguments (the PR 1 ``TrainerConfig`` bug class)
R003    in-place mutation of ``Tensor.data`` / ``.grad`` outside the
        whitelisted optimizer/init modules (corrupts activations saved by
        ``_backward`` closures; invisible to the version counter)
R004    closures defined inside a loop capturing the loop variable by
        reference (late binding mis-wires ``backward`` closures)
R005    float ``==`` / ``!=`` comparisons against float literals
R006    differentiable ``Tensor`` op with no case in the
        ``repro.verify.gradcheck`` registry
R007    wall-clock or environment reads (``time.time``, ``os.environ``)
        inside the deterministic core/nn/sampling paths
R008    ``Tensor`` op implementations constructing result arrays with a
        hard-coded float dtype instead of inheriting the operand dtype
R009    mutation of a ``# repro-lint: guarded-by=<lock>`` attribute
        outside a ``with self.<lock>:`` scope (see
        :mod:`repro.lint.concurrency`)
R010    fork-unsafe state in multiprocessing worker functions (threading
        primitives, module-level RNGs, returning shared-view results)
R011    a numpy ``Generator`` shared across thread/worker boundaries
        instead of per-worker ``spawn_rngs`` streams
R012    blocking calls (``time.sleep``, I/O, ``.join()``) while holding
        a lock/condition
R013    array growth (``np.append``/``np.concatenate``/``np.vstack`` or
        list-grow-then-``asarray``) inside a loop body (see
        :mod:`repro.lint.perf`)
R014    silent dtype-promotion copies (casts of fresh temporaries,
        chained ``astype``, unmarked float64 promotion) in hot modules
R015    Python-level iteration over ndarrays in hot modules
R016    loop-invariant calls to known-expensive helpers (``csr()``,
        ``node_embeddings()``, ``type_pool()``) inside loop bodies
R017    fresh ``np.zeros``/``np.empty`` of a loop-invariant shape
        allocated inside the loop instead of hoisted and reused
======  ==============================================================

Every finding carries a fix hint and can be silenced on its line with
``# repro-lint: disable=RXXX`` or excluded via the committed baseline.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.base import Rule, dotted as _dotted
from repro.lint.engine import FileContext, Finding

__all__ = ["Rule", "all_rules", "RULES"]


class BareRandomRule(Rule):
    """R001: all randomness must flow through ``utils/rng.py``."""

    code = "R001"
    name = "bare-random"
    hint = (
        "thread an explicit numpy Generator through the call chain via "
        "repro.utils.rng.as_rng / spawn_rng instead of module-level RNGs"
    )

    _PREFIXES = ("np.random.", "numpy.random.", "random.")
    _MODULES = {"random", "numpy.random"}

    def applies_to(self, rel_path: str) -> bool:
        return not rel_path.endswith("utils/rng.py")

    def check(self, ctx: FileContext) -> List[Finding]:
        imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in self._MODULES:
                imported.update(alias.asname or alias.name for alias in node.names)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = _dotted(node.func)
            if fn is None:
                continue
            bare = any(fn.startswith(prefix) for prefix in self._PREFIXES)
            if bare or fn in imported:
                findings.append(self.finding(
                    ctx, node,
                    f"nondeterministic RNG call '{fn}()' outside utils/rng.py",
                ))
        return findings


class MutableDefaultRule(Rule):
    """R002: mutable default arguments are shared across calls."""

    code = "R002"
    name = "mutable-default"
    hint = (
        "default to None and construct the container inside the function "
        "(or use dataclasses.field(default_factory=...))"
    )

    _FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
                  "Counter", "deque"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = _dotted(node.func)
            if fn is None:
                return False
            return fn in self._FACTORIES or fn.split(".")[-1] in self._FACTORIES
        return False

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults):
                if self._is_mutable(default):
                    findings.append(self.finding(
                        ctx, default,
                        f"mutable default argument "
                        f"'{arg.arg}={ast.unparse(default)}'",
                    ))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and self._is_mutable(default):
                    findings.append(self.finding(
                        ctx, default,
                        f"mutable default argument "
                        f"'{arg.arg}={ast.unparse(default)}'",
                    ))
        return findings


class BufferMutationRule(Rule):
    """R003: ``.data`` / ``.grad`` must not be mutated in place.

    The sanctioned write path is whole-array assignment
    (``tensor.data = ...``), which bumps the Tensor version counter the
    runtime sanitizer checks.  In-place stores (``+=`` on the buffer,
    slice assignment, ``out=``) bypass the counter and silently corrupt
    activations saved by ``_backward`` closures.
    """

    code = "R003"
    name = "autograd-buffer-mutation"
    hint = (
        "replace the buffer with a fresh array via `tensor.data = ...` "
        "(the version-counted write path); only the whitelisted "
        "optimizer/init/engine modules may mutate in place"
    )

    _WHITELIST = ("nn/optim.py", "nn/init.py", "nn/tensor.py")
    _ATTRS = {"data", "grad"}

    def applies_to(self, rel_path: str) -> bool:
        return not any(rel_path.endswith(entry) for entry in self._WHITELIST)

    def _is_buffer_attr(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self._ATTRS

    def _mentions_buffer(self, node: ast.AST) -> bool:
        return any(self._is_buffer_attr(sub) for sub in ast.walk(node))

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                target = node.target
                base = target.value if isinstance(target, ast.Subscript) else target
                if self._is_buffer_attr(base):
                    findings.append(self.finding(
                        ctx, node,
                        f"in-place update of autograd buffer "
                        f"'{ast.unparse(target)}'",
                    ))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and \
                            self._is_buffer_attr(target.value):
                        findings.append(self.finding(
                            ctx, node,
                            f"slice assignment into autograd buffer "
                            f"'{ast.unparse(target)}'",
                        ))
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "out" and self._mentions_buffer(keyword.value):
                        findings.append(self.finding(
                            ctx, node,
                            f"numpy out= writes into autograd buffer "
                            f"'{ast.unparse(keyword.value)}'",
                        ))
        return findings


class LoopClosureRule(Rule):
    """R004: closures created in a loop see the loop variable's final value."""

    code = "R004"
    name = "loop-closure-capture"
    hint = (
        "bind the current value at definition time (e.g. a default "
        "argument `def backward(grad, i=i)`) or build the closure in a "
        "helper function called with the loop variable"
    )

    def _bound_names(self, func: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args) +
                    list(args.kwonlyargs)):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and \
                        isinstance(node.ctx, (ast.Store, ast.Del)):
                    bound.add(node.id)
                elif isinstance(node, ast.arg):
                    bound.add(node.arg)
        return bound

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            targets = {
                node.id for node in ast.walk(loop.target)
                if isinstance(node, ast.Name)
            }
            for stmt in loop.body:
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.FunctionDef,
                                             ast.AsyncFunctionDef, ast.Lambda)):
                        continue
                    bound = self._bound_names(node)
                    body = node.body if isinstance(node.body, list) else [node.body]
                    captured = set()
                    for inner_stmt in body:
                        for sub in ast.walk(inner_stmt):
                            if isinstance(sub, ast.Name) and \
                                    isinstance(sub.ctx, ast.Load) and \
                                    sub.id in targets and sub.id not in bound:
                                captured.add(sub.id)
                    for name in sorted(captured):
                        label = getattr(node, "name", "<lambda>")
                        findings.append(self.finding(
                            ctx, node,
                            f"closure '{label}' defined inside a loop "
                            f"captures loop variable '{name}' by reference "
                            f"(late binding)",
                        ))
        return findings


class FloatEqualityRule(Rule):
    """R005: exact float comparison is numerically fragile."""

    code = "R005"
    name = "float-equality"
    hint = (
        "compare with np.isclose/math.isclose or an explicit tolerance; "
        "for degenerate-value guards prefer <= / >= bounds"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left] + list(node.comparators):
                if isinstance(operand, ast.Constant) and \
                        isinstance(operand.value, float):
                    findings.append(self.finding(
                        ctx, node,
                        f"float equality comparison against literal "
                        f"{operand.value!r}",
                    ))
                    break
        return findings


class GradcheckCoverageRule(Rule):
    """R006: every differentiable op needs a gradcheck registry case.

    Cross-checks the AST of any file defining ``class Tensor`` (or
    module-level functionals built on ``Tensor._make``) against the live
    ``repro.verify.gradcheck`` registry introspection, so a new op lands
    with its numeric gradient check or not at all.
    """

    code = "R006"
    name = "gradcheck-coverage"
    hint = (
        "register a case with @register(name, targets=(...)) in "
        "src/repro/verify/gradcheck.py exercising the new op's gradient"
    )

    def _covered(self) -> Set[str]:
        from repro.verify.gradcheck import covered_targets

        return set(covered_targets())

    def check(self, ctx: FileContext) -> List[Finding]:
        tensor_class = None
        functionals = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "Tensor":
                tensor_class = node
            elif isinstance(node, ast.FunctionDef) and \
                    not node.name.startswith("_") and \
                    self._builds_tensor(node):
                functionals.append(node)
        if tensor_class is None and not functionals:
            return []

        from repro.verify.gradcheck import _DUNDER_OPS, _NON_DIFF_METHODS

        covered = self._covered()
        findings = []
        if tensor_class is not None:
            for member in tensor_class.body:
                if not isinstance(member, ast.FunctionDef):
                    continue
                if self._is_property(member):
                    continue
                if member.name in _DUNDER_OPS:
                    op = _DUNDER_OPS[member.name]
                elif member.name.startswith("_") or \
                        member.name in _NON_DIFF_METHODS:
                    continue
                else:
                    op = member.name
                target = f"Tensor.{op}"
                if target not in covered:
                    findings.append(self.finding(
                        ctx, member,
                        f"differentiable op '{target}' has no case in the "
                        f"verify.gradcheck registry",
                    ))
        for node in functionals:
            if node.name not in covered:
                findings.append(self.finding(
                    ctx, node,
                    f"differentiable functional '{node.name}' has no case "
                    f"in the verify.gradcheck registry",
                ))
        return findings

    @staticmethod
    def _is_property(member: ast.FunctionDef) -> bool:
        for decorator in member.decorator_list:
            name = _dotted(decorator) or ""
            if name == "property" or name.endswith(".setter") or \
                    name.endswith(".getter") or name == "staticmethod":
                return True
        return False

    @staticmethod
    def _builds_tensor(node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _dotted(sub.func) == "Tensor._make":
                return True
        return False


class EnvironmentReadRule(Rule):
    """R007: core paths must be deterministic functions of inputs + seed."""

    code = "R007"
    name = "environment-read"
    hint = (
        "pass the value in through a config/profile argument; wall-clock "
        "and environment reads belong in perf/, experiments/ or the CLI"
    )

    _RESTRICTED = ("core/", "nn/", "sampling/")
    _CALLS = {
        "time.time", "time.monotonic", "time.perf_counter",
        "time.process_time", "time.time_ns",
        "datetime.now", "datetime.utcnow", "datetime.datetime.now",
        "datetime.datetime.utcnow", "date.today", "datetime.date.today",
        "os.getenv",
    }

    def applies_to(self, rel_path: str) -> bool:
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in rel_path
            for prefix in self._RESTRICTED
        )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = _dotted(node.func)
                if fn and (fn in self._CALLS or fn.startswith("os.environ.")):
                    findings.append(self.finding(
                        ctx, node,
                        f"environment-dependent call '{fn}' in a "
                        f"deterministic core path",
                    ))
            elif isinstance(node, ast.Subscript):
                if _dotted(node.value) == "os.environ" and \
                        isinstance(node.ctx, ast.Load):
                    findings.append(self.finding(
                        ctx, node,
                        "os.environ read in a deterministic core path",
                    ))
        return findings


class HardcodedDtypeRule(Rule):
    """R008: op results must inherit operand dtype, not pin their own.

    A ``Tensor`` op (a ``Tensor`` method or a functional built on
    ``Tensor._make``) that constructs its result or an intermediate with
    an explicit float dtype (``np.zeros(..., dtype=np.float64)``,
    ``.astype(np.float32)``) silently promotes or truncates whatever
    dtype flows in, which the graph checker then reports as a C004
    promotion on every model.  Inherit the operand dtype
    (``dtype=x.dtype``) instead.  Intentional coercion boundaries
    (``Tensor.__init__``, the ``data`` setter, ``backward`` seeding) are
    carried in the lint baseline.
    """

    code = "R008"
    name = "hardcoded-dtype"
    hint = (
        "derive the result dtype from the operand (e.g. dtype=self._data.dtype "
        "or .astype(x.dtype)); hard-coded float dtypes belong only at the "
        "Tensor construction boundary"
    )

    _FLOAT_DTYPES = {
        "np.float64", "np.float32", "np.float16", "numpy.float64",
        "numpy.float32", "numpy.float16", "np.single", "np.double",
        "numpy.single", "numpy.double",
    }

    def _float_dtype_name(self, node: ast.AST) -> Optional[str]:
        name = _dotted(node)
        if name in self._FLOAT_DTYPES:
            return name
        if isinstance(node, ast.Constant) and isinstance(node.value, str) and \
                node.value.startswith(("float", "single", "double")):
            return repr(node.value)
        return None

    def _check_scope(self, ctx: FileContext, scope: ast.FunctionDef,
                     where: str) -> List[Finding]:
        findings = []
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "dtype":
                    continue
                name = self._float_dtype_name(keyword.value)
                if name is not None:
                    findings.append(self.finding(
                        ctx, node,
                        f"hard-coded result dtype {name} in {where}",
                    ))
            fn = _dotted(node.func)
            if fn and fn.endswith(".astype") and node.args:
                name = self._float_dtype_name(node.args[0])
                if name is not None:
                    findings.append(self.finding(
                        ctx, node,
                        f"hard-coded .astype({name}) in {where}",
                    ))
        return findings

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "Tensor":
                for member in node.body:
                    if isinstance(member, ast.FunctionDef):
                        findings.extend(self._check_scope(
                            ctx, member, f"Tensor.{member.name}"))
            elif isinstance(node, ast.FunctionDef) and \
                    GradcheckCoverageRule._builds_tensor(node):
                findings.extend(self._check_scope(ctx, node, node.name))
        return findings


# Imported here (not at the top) so the concurrency/perf packs can reuse
# the shared base without a circular import; see repro/lint/base.py.
from repro.lint.concurrency import CONCURRENCY_RULES  # noqa: E402
from repro.lint.perf import PERF_RULES  # noqa: E402

RULES = (
    BareRandomRule,
    MutableDefaultRule,
    BufferMutationRule,
    LoopClosureRule,
    FloatEqualityRule,
    GradcheckCoverageRule,
    EnvironmentReadRule,
    HardcodedDtypeRule,
) + CONCURRENCY_RULES + PERF_RULES


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [cls() for cls in RULES]
