"""Performance lint rules (R013–R017) for the numpy hot paths.

Static counterpart of the runtime allocation sanitizer in
:mod:`repro.perf.allocations`.  Five dataflow rules cover the numpy
anti-patterns that silently erode the hot stages BENCH_serving.json and
BENCH_training.json say dominate wall time:

======  ==============================================================
R013    array growth inside a loop body (``np.append`` /
        ``np.concatenate`` / ``np.vstack`` / ``np.hstack``, or a list
        grown in the loop re-materialised with ``np.asarray`` each
        iteration)
R014    silent dtype-promotion copies in hot modules: a cast of a
        freshly computed temporary, a chained ``astype``, or an
        explicit float64 promotion without an intended-dtype marker
R015    Python-level iteration over an ndarray in hot modules
        (``for x in arr``, per-iteration ``arr.tolist()``, scalar
        ``arr[i]`` indexing in a range loop)
R016    a loop-invariant call to a known-expensive helper (``csr()``,
        ``node_embeddings()``, ``type_pool()``) recomputed every
        iteration
R017    a fresh ``np.zeros``/``np.empty``/``np.ones``/``np.full`` of a
        loop-invariant shape allocated inside the loop instead of
        being hoisted and filled in place
======  ==============================================================

Scope and escape hatches:

- "Hot modules" are the first-level packages ``nn/``, ``sampling/``,
  ``serving/`` and ``train/`` — the paths whose stages carry ~97% of
  serving time and the per-epoch training cost.  R014/R015 only apply
  there; R013/R016/R017 apply tree-wide.
- ``_reference_*`` functions are whitelisted by name for every rule in
  this pack: the scalar oracle paths are deliberately naive so the
  vectorised implementations have something bit-exact to diff against.
- The *sanctioned* growth pattern — append parts to a list inside the
  loop, concatenate/asarray **once after** the loop — is recognised and
  not flagged by R013; only growth calls lexically inside the loop body
  fire.
- ``# repro-lint: intended-dtype=<dtype>`` on the offending line marks
  a deliberate promotion/cast boundary and silences R014 (the generic
  ``disable=R014`` marker also works, but the intent marker documents
  *which* dtype is meant).

The rules are lexical, like the concurrency pack: loop-invariance means
"no name stored anywhere in the loop is read by the expression", not a
full dataflow analysis.  The runtime allocation tracker covers what the
lexical rules cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.base import Rule, dotted
from repro.lint.engine import FileContext, Finding

__all__ = [
    "PERF_RULES",
    "ArrayGrowthRule",
    "DtypePromotionRule",
    "NdarrayIterationRule",
    "InvariantRecomputeRule",
    "MissingPreallocationRule",
    "perf_rules",
]

#: Deliberate-cast marker: ``# repro-lint: intended-dtype=int64``.
_INTENT_RE = re.compile(r"#\s*repro-lint:\s*intended-dtype=([A-Za-z0-9_.]+)")

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)

#: First-level packages whose stages dominate serving/training time.
_HOT_PACKAGES = ("nn", "sampling", "serving", "train")


def _is_hot_module(rel_path: str) -> bool:
    parts = rel_path.replace("\\", "/").split("/")
    return len(parts) > 1 and parts[0] in _HOT_PACKAGES


def _scoped_walk(tree: ast.Module) -> List[Tuple[ast.AST, str, bool]]:
    """Every node with its enclosing scope label and oracle-path flag.

    Returns ``(node, scope, in_reference)`` triples in source order.
    ``scope`` is the dotted chain of enclosing class/function names
    (``"<module>"`` at top level); ``in_reference`` is True inside a
    ``_reference_*`` function, whose deliberately scalar code is
    whitelisted for the whole perf pack.
    """
    out: List[Tuple[ast.AST, str, bool]] = []

    def visit(node: ast.AST, scope: str, ref: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope, child_ref = scope, ref
            if isinstance(child, _FUNCTION_DEFS + (ast.ClassDef,)):
                child_scope = (
                    child.name if scope == "<module>" else f"{scope}.{child.name}"
                )
                if isinstance(child, _FUNCTION_DEFS) and \
                        child.name.startswith("_reference_"):
                    child_ref = True
            out.append((child, child_scope, child_ref))
            visit(child, child_scope, child_ref)

    visit(tree, "<module>", False)
    return out


def _loops_with_scope(tree: ast.Module) -> List[Tuple[ast.AST, str]]:
    """All for/while loops outside ``_reference_*`` oracles, outermost first."""
    return [
        (node, scope)
        for node, scope, ref in _scoped_walk(tree)
        if isinstance(node, _LOOPS) and not ref
    ]


def _scope_units(tree: ast.Module) -> List[Tuple[str, ast.AST, bool]]:
    """The module plus every function, as independent name scopes.

    Returns ``(label, unit, in_reference)``; used where name tracking
    must not leak across functions (two functions reusing a local name
    for different kinds of values).
    """
    units: List[Tuple[str, ast.AST, bool]] = [("<module>", tree, False)]
    for node, scope, ref in _scoped_walk(tree):
        if isinstance(node, _FUNCTION_DEFS):
            units.append((scope, node, ref))
    return units


def _own_walk(unit: ast.AST) -> Iterable[ast.AST]:
    """Walk a scope unit's body without entering nested defs/lambdas.

    Nested functions are still *yielded* (so a unit sees that they
    exist) but never descended into — their bodies belong to their own
    scope unit and must not leak names or loops into this one.
    """
    todo: List[ast.AST] = list(unit.body)
    while todo:
        current = todo.pop()
        yield current
        if isinstance(current, (ast.Lambda,) + _FUNCTION_DEFS):
            continue
        todo.extend(ast.iter_child_nodes(current))


def _walk_loop_body(loop: ast.AST) -> Iterable[ast.AST]:
    """Walk a loop's body without descending into nested defs/lambdas.

    Code inside a nested ``def`` or lambda runs later, outside this
    iteration — per-iteration cost reasoning does not apply to it.
    Nested loops *are* descended into (their statements still run every
    outer iteration); callers dedupe by node id.
    """
    todo: List[ast.AST] = list(loop.body) + list(getattr(loop, "orelse", []))
    while todo:
        current = todo.pop()
        yield current
        if isinstance(current, (ast.Lambda,) + _FUNCTION_DEFS):
            continue
        todo.extend(ast.iter_child_nodes(current))


def _stored_names(loop: ast.AST) -> Set[str]:
    """Names assigned anywhere in the loop (target, body, orelse)."""
    stored: Set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                stored.add(node.id)
    for stmt in list(loop.body) + list(getattr(loop, "orelse", [])):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                stored.add(node.id)
            elif isinstance(node, ast.arg):
                stored.add(node.arg)
    return stored


def _loop_invariant(expr: ast.AST, stored: Set[str]) -> bool:
    """Lexically loop-invariant: reads no name the loop stores."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) and \
                node.id in stored:
            return False
    return True


def _src(node: ast.AST, limit: int = 48) -> str:
    """Compact source rendering for messages (stable baseline keys)."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we flag
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _loop_kind(loop: ast.AST) -> str:
    return "while" if isinstance(loop, ast.While) else "for"


class ArrayGrowthRule(Rule):
    """R013: arrays must not grow inside loop bodies."""

    code = "R013"
    name = "array-growth-in-loop"
    hint = (
        "growing an ndarray reallocates and copies the whole result "
        "every iteration (quadratic bytes moved); accumulate parts in "
        "a list and concatenate once after the loop, or preallocate "
        "the padded output and fill row slices"
    )

    _GROWTH = frozenset({
        "np.append", "numpy.append",
        "np.concatenate", "numpy.concatenate",
        "np.vstack", "numpy.vstack",
        "np.hstack", "numpy.hstack",
    })
    _MATERIALISERS = frozenset({
        "np.asarray", "numpy.asarray", "np.array", "numpy.array",
    })
    _LIST_GROWERS = frozenset({"append", "extend"})

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[int] = set()
        for loop, scope in _loops_with_scope(ctx.tree):
            grown = self._grown_lists(loop)
            for node in _walk_loop_body(loop):
                if id(node) in seen:
                    continue
                target = self._accumulation(node)
                if target is not None:
                    call = node.value
                    seen.add(id(call))
                    findings.append(self.finding(
                        ctx, call,
                        f"array '{target}' grown with "
                        f"'{dotted(call.func)}' every iteration of a "
                        f"{_loop_kind(loop)} loop in {scope}",
                    ))
                    continue
                if not isinstance(node, ast.Call):
                    continue
                fn = dotted(node.func) or ""
                if fn in self._MATERIALISERS and node.args and \
                        isinstance(node.args[0], ast.Name) and \
                        node.args[0].id in grown:
                    seen.add(id(node))
                    findings.append(self.finding(
                        ctx, node,
                        f"list '{node.args[0].id}' grown in this loop is "
                        f"re-materialised with '{fn}' every iteration in "
                        f"{scope}",
                    ))
        return findings

    def _accumulation(self, node: ast.AST):
        """Target name when ``node`` is ``X = np.concatenate([.. X ..])``.

        Growth means the rebound name is also *read* by the growth call:
        a per-iteration concat of fresh parts (or the sanctioned
        accumulate-then-concat after the loop) is not growth.
        """
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return None
        target = dotted(node.targets[0])
        if target is None or not isinstance(node.value, ast.Call):
            return None
        fn = dotted(node.value.func) or ""
        if fn not in self._GROWTH:
            return None
        read = {
            dotted(sub)
            for arg in list(node.value.args) +
            [kw.value for kw in node.value.keywords]
            for sub in ast.walk(arg)
            if isinstance(sub, (ast.Name, ast.Attribute))
        }
        return target if target in read else None

    def _grown_lists(self, loop: ast.AST) -> Set[str]:
        """Names grown via ``x.append``/``x.extend``/``x += ...`` in the loop."""
        grown: Set[str] = set()
        for node in _walk_loop_body(loop):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._LIST_GROWERS and \
                    isinstance(node.func.value, ast.Name):
                grown.add(node.func.value.id)
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, ast.Add) and \
                    isinstance(node.target, ast.Name):
                grown.add(node.target.id)
        return grown


class DtypePromotionRule(Rule):
    """R014: no silent dtype-promotion copies in hot modules."""

    code = "R014"
    name = "dtype-promotion-copy"
    hint = (
        "a cast of a freshly computed temporary buys an extra full-size "
        "copy; compute into the target dtype directly (in-place ufunc "
        "with out=, or a single astype of a bound array), or mark a "
        "deliberate coercion boundary with "
        "`# repro-lint: intended-dtype=<dtype>`"
    )

    _FLOAT64 = frozenset({"np.float64", "numpy.float64", "float", "float64"})

    def applies_to(self, rel_path: str) -> bool:
        return _is_hot_module(rel_path)

    def check(self, ctx: FileContext) -> List[Finding]:
        marked = {
            number
            for number, line in enumerate(ctx.lines, start=1)
            if _INTENT_RE.search(line)
        }
        findings: List[Finding] = []
        for node, scope, ref in _scoped_walk(ctx.tree):
            if ref or not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "astype":
                continue
            if node.lineno in marked:
                continue
            receiver = func.value
            if isinstance(receiver, ast.Call) and \
                    isinstance(receiver.func, ast.Attribute) and \
                    receiver.func.attr == "astype":
                findings.append(self.finding(
                    ctx, node,
                    f"chained astype '{_src(node)}' in {scope} "
                    f"materialises one intermediate array per cast",
                ))
            elif isinstance(receiver, (ast.Call, ast.BinOp, ast.UnaryOp)):
                findings.append(self.finding(
                    ctx, node,
                    f"dtype cast of a freshly computed temporary "
                    f"'{_src(node)}' in {scope}",
                ))
            elif self._is_float64_target(node):
                findings.append(self.finding(
                    ctx, node,
                    f"silent float64 promotion '{_src(node)}' in {scope}",
                ))
        return findings

    def _is_float64_target(self, call: ast.Call) -> bool:
        if not call.args:
            return False
        target = call.args[0]
        if isinstance(target, ast.Constant) and isinstance(target.value, str):
            return target.value in self._FLOAT64
        name = dotted(target)
        return name in self._FLOAT64


class NdarrayIterationRule(Rule):
    """R015: no Python-level element iteration over ndarrays in hot modules."""

    code = "R015"
    name = "python-iteration-over-ndarray"
    hint = (
        "Python-level element access pays interpreter + boxing cost per "
        "element; replace the loop with vectorised numpy ops (fancy "
        "indexing, ufuncs, reductions), or convert once with tolist() "
        "outside the loop"
    )

    _ARRAY_PREFIXES = ("np.", "numpy.")
    _NDARRAY_ANNOTATIONS = frozenset({"np.ndarray", "numpy.ndarray"})
    #: Bounded group-by iteration (``for code in np.unique(codes)``) and
    #: plain index generation are sanctioned loop headers.
    _HEADER_WHITELIST = frozenset({"unique", "arange"})

    def applies_to(self, rel_path: str) -> bool:
        return _is_hot_module(rel_path)

    def check(self, ctx: FileContext) -> List[Finding]:
        # ``x.tolist()`` *in a loop header* runs once per that loop and
        # is the sanctioned convert-once form — only per-iteration calls
        # in loop bodies are element-wise waste.
        header_nodes: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                header_nodes.update(id(sub) for sub in ast.walk(node.iter))
        findings: List[Finding] = []
        seen: Set[int] = set()
        for scope, unit, ref in _scope_units(ctx.tree):
            if ref:
                continue
            tracked = self._tracked_arrays(unit)
            for loop in _own_walk(unit):
                if not isinstance(loop, _LOOPS):
                    continue
                if isinstance(loop, (ast.For, ast.AsyncFor)) and \
                        id(loop.iter) not in seen:
                    seen.add(id(loop.iter))
                    self._check_loop_header(ctx, loop, scope, tracked,
                                            findings)
                range_target = self._range_target(loop)
                for node in _walk_loop_body(loop):
                    if id(node) in seen:
                        continue
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            node.func.attr == "tolist" and \
                            isinstance(node.func.value, ast.Name) and \
                            node.func.value.id in tracked and \
                            id(node) not in header_nodes:
                        seen.add(id(node))
                        findings.append(self.finding(
                            ctx, node,
                            f"per-iteration '{node.func.value.id}"
                            f".tolist()' inside a loop in {scope}",
                        ))
                    elif range_target and isinstance(node, ast.Subscript) and \
                            isinstance(node.ctx, ast.Load) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id in tracked and \
                            isinstance(node.slice, ast.Name) and \
                            node.slice.id == range_target:
                        seen.add(id(node))
                        findings.append(self.finding(
                            ctx, node,
                            f"scalar element indexing "
                            f"'{node.value.id}[{range_target}]' in a "
                            f"Python range loop in {scope}",
                        ))
        return findings

    def _check_loop_header(self, ctx: FileContext, loop: ast.AST, scope: str,
                           tracked: Set[str], out: List[Finding]) -> None:
        iterated = loop.iter
        if isinstance(iterated, ast.Name) and iterated.id in tracked:
            out.append(self.finding(
                ctx, iterated,
                f"Python-level iteration 'for ... in {iterated.id}' over "
                f"an ndarray in {scope}",
            ))
        elif isinstance(iterated, ast.Call):
            fn = dotted(iterated.func) or ""
            if any(fn.startswith(p) for p in self._ARRAY_PREFIXES) and \
                    fn.split(".")[-1] not in self._HEADER_WHITELIST:
                out.append(self.finding(
                    ctx, iterated,
                    f"Python-level iteration over '{fn}(...)' result "
                    f"in {scope}",
                ))

    @staticmethod
    def _range_target(loop: ast.AST) -> str:
        if isinstance(loop, (ast.For, ast.AsyncFor)) and \
                isinstance(loop.iter, ast.Call) and \
                isinstance(loop.iter.func, ast.Name) and \
                loop.iter.func.id == "range" and \
                isinstance(loop.target, ast.Name):
            return loop.target.id
        return ""

    def _tracked_arrays(self, unit: ast.AST) -> Set[str]:
        """Names bound to numpy-call results (or ndarray-annotated args)
        within one scope unit — tracking is per-function so a name reused
        for a non-array value in another function cannot leak in."""
        tracked: Set[str] = set()
        for node in _own_walk(unit):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                fn = dotted(node.value.func) or ""
                if any(fn.startswith(p) for p in self._ARRAY_PREFIXES):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tracked.add(target.id)
        if isinstance(unit, _FUNCTION_DEFS):
            args = unit.args
            for arg in (list(args.posonlyargs) + list(args.args) +
                        list(args.kwonlyargs)):
                if arg.annotation is not None and \
                        dotted(arg.annotation) in self._NDARRAY_ANNOTATIONS:
                    tracked.add(arg.arg)
        return tracked


class InvariantRecomputeRule(Rule):
    """R016: known-expensive pure helpers must be hoisted out of loops."""

    code = "R016"
    name = "invariant-recompute-in-loop"
    hint = (
        "the call's receiver and arguments never change inside this "
        "loop, but the helper rebuilds/rescans its result every "
        "iteration; hoist the call above the loop and reuse the bound "
        "result"
    )

    #: Pure helpers whose cost is linear in graph/embedding size: CSR
    #: (re)construction, embedding-table gathers, and type-pool scans.
    _EXPENSIVE = frozenset({"csr", "node_embeddings", "type_pool"})

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[int] = set()
        for loop, scope in _loops_with_scope(ctx.tree):
            stored = _stored_names(loop)
            for node in _walk_loop_body(loop):
                if id(node) in seen or not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) or \
                        func.attr not in self._EXPENSIVE:
                    continue
                if _loop_invariant(node, stored):
                    seen.add(id(node))
                    findings.append(self.finding(
                        ctx, node,
                        f"loop-invariant call '{_src(node)}' recomputed "
                        f"every iteration of a {_loop_kind(loop)} loop "
                        f"in {scope}",
                    ))
        return findings


class MissingPreallocationRule(Rule):
    """R017: loop-invariant-shaped buffers are allocated once, outside."""

    code = "R017"
    name = "missing-preallocation"
    hint = (
        "the allocated shape never changes inside this loop, so every "
        "iteration pays allocator + zeroing cost for an identical "
        "buffer; allocate it once before the loop and overwrite in "
        "place (or write into a preallocated stacked output)"
    )

    _ALLOCATORS = frozenset({
        "np.zeros", "numpy.zeros",
        "np.empty", "numpy.empty",
        "np.ones", "numpy.ones",
        "np.full", "numpy.full",
    })

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[int] = set()
        for loop, scope in _loops_with_scope(ctx.tree):
            stored = _stored_names(loop)
            for node in _walk_loop_body(loop):
                if id(node) in seen or not isinstance(node, ast.Call):
                    continue
                fn = dotted(node.func) or ""
                if fn not in self._ALLOCATORS or not node.args:
                    continue
                shape = node.args[0]
                if isinstance(shape, ast.Constant) and shape.value == 0:
                    # Zero-size sentinel allocations are free.
                    continue
                if _loop_invariant(shape, stored):
                    seen.add(id(node))
                    findings.append(self.finding(
                        ctx, node,
                        f"fresh '{fn}' of loop-invariant shape "
                        f"'{_src(shape)}' allocated every iteration of a "
                        f"{_loop_kind(loop)} loop in {scope}",
                    ))
        return findings


PERF_RULES = (
    ArrayGrowthRule,
    DtypePromotionRule,
    NdarrayIterationRule,
    InvariantRecomputeRule,
    MissingPreallocationRule,
)


def perf_rules() -> List[Rule]:
    """Fresh instances of just the perf pack (for ``repro lint --perf``)."""
    return [cls() for cls in PERF_RULES]
