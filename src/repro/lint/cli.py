"""``python -m repro lint`` — the project linter front end.

Exit status: 0 when every finding is baselined or suppressed; 1 when
actionable findings remain, or (with ``--strict``) when the baseline
contains stale entries.  CI runs ``repro lint --strict --format json`` as a
blocking job and archives the JSON report.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro.lint.baseline import default_baseline_path
from repro.lint.engine import format_json, format_text, run_lint

__all__ = ["add_lint_arguments", "cmd_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint CLI surface to an argparse (sub)parser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default="",
        help=f"baseline file (default: {default_baseline_path()})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="run only the performance rule pack (R013-R017)",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    baseline: Optional[Path] = Path(args.baseline) if args.baseline else None
    rules = None
    if getattr(args, "perf", False):
        from repro.lint.perf import perf_rules

        rules = perf_rules()
    report = run_lint(paths=args.paths or None, baseline_path=baseline,
                      rules=rules)
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    if args.strict:
        return 0 if report.strict_passed else 1
    return 0 if report.passed else 1
