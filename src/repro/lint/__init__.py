"""Static **code** analysis for the reproduction: the ``repro lint`` rules.

Naming note: this package lints the *source tree* (AST rules R001–R012,
suppression markers, committed baseline).  It is deliberately distinct
from :mod:`repro.analysis`, which analyses *embeddings and results* —
``lint`` is about the code, ``analysis`` is about the model outputs.

Public surface:

- :func:`repro.lint.engine.run_lint` (re-exported here and lazily from the
  top-level :mod:`repro` package) — run the full rule set over a tree;
- :mod:`repro.lint.rules` — the rule classes and ``all_rules()``;
- :mod:`repro.lint.baseline` — committed-debt bookkeeping;
- ``python -m repro lint`` — the CLI (see :mod:`repro.lint.cli`).
"""

from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    default_baseline_path,
    load_baseline,
)
from repro.lint.engine import (
    Finding,
    LintReport,
    format_json,
    format_text,
    lint_source,
    run_lint,
)
from repro.lint.rules import RULES, Rule, all_rules

__all__ = [
    "Finding",
    "LintReport",
    "run_lint",
    "lint_source",
    "format_text",
    "format_json",
    "Rule",
    "RULES",
    "all_rules",
    "BaselineEntry",
    "load_baseline",
    "apply_baseline",
    "default_baseline_path",
]
