"""Core of ``repro lint``: file walking, suppression, reporting.

The engine parses every Python file under the lint root (by default the
installed ``repro`` package itself), runs each registered
:class:`~repro.lint.rules.Rule` over the AST, honours per-line
``# repro-lint: disable=RXXX`` suppressions, subtracts the committed
baseline (:mod:`repro.lint.baseline`), and renders the result as text or
JSON.  See TESTING.md ("Static analysis & sanitizers") for the workflow.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "default_root",
    "lint_source",
    "lint_file",
    "run_lint",
    "format_text",
    "format_json",
]

#: Per-line suppression marker: ``# repro-lint: disable=R001`` (or a
#: comma-separated list, or ``all``).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Pseudo-rule code for files the engine cannot parse.
PARSE_ERROR_CODE = "E001"

#: Version of the JSON report layout emitted by :func:`format_json`.
#: Bump when keys are renamed/removed so CI artifact consumers can tell a
#: schema change from a regression.
LINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One lint finding, addressable by a stable (code, path, message) key."""

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift, messages rarely do."""
        return (self.code, self.path, self.message)

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class FileContext:
    """Parsed source handed to each rule."""

    rel_path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, rel_path: str) -> "FileContext":
        return cls(
            rel_path=rel_path,
            source=source,
            tree=ast.parse(source),
            lines=source.splitlines(),
        )


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the codes suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            codes = {token.strip() for token in match.group(1).split(",")}
            table[number] = {code for code in codes if code}
    return table


def default_root() -> Path:
    """The directory linted when no paths are given: the repro package."""
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        else:
            yield path


def _default_rules():
    from repro.lint.rules import all_rules

    return all_rules()


def lint_source(
    source: str,
    rel_path: str,
    rules=None,
) -> Tuple[List[Finding], int]:
    """Lint one source string; returns (findings, suppressed_count).

    Findings carrying a same-line ``# repro-lint: disable=`` marker for
    their code (or ``all``) are dropped and counted instead.
    """
    if rules is None:
        rules = _default_rules()
    try:
        ctx = FileContext.parse(source, rel_path)
    except SyntaxError as exc:
        finding = Finding(
            code=PARSE_ERROR_CODE,
            path=rel_path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"could not parse file: {exc.msg}",
            hint="repro lint only runs on syntactically valid Python",
        )
        return [finding], 0

    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(rel_path):
            raw.extend(rule.check(ctx))

    suppressed_on = _suppressions(ctx.lines)
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        codes = suppressed_on.get(finding.line, ())
        if finding.code in codes or "all" in codes:
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, suppressed


def lint_file(path: Path, rel_path: str, rules=None) -> Tuple[List[Finding], int]:
    return lint_source(path.read_text(encoding="utf-8"), rel_path, rules=rules)


@dataclass
class LintReport:
    """Outcome of a full lint run."""

    root: str
    files_checked: int = 0
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[Dict] = field(default_factory=list)
    suppressed: int = 0

    @property
    def passed(self) -> bool:
        """No actionable (non-baselined, non-suppressed) findings."""
        return not self.findings

    @property
    def strict_passed(self) -> bool:
        """``passed`` plus no stale baseline entries left behind."""
        return self.passed and not self.stale_baseline

    def to_dict(self) -> Dict:
        # Findings are globally re-sorted by (path, line, code): run order
        # (and the per-file (line, col) tiebreak) must not leak into CI
        # artifacts, or artifact diffs churn on unrelated changes.
        ordered = sorted(self.findings, key=_artifact_order)
        baselined = sorted(self.baselined, key=_artifact_order)
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "root": self.root,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in ordered],
            "baselined": [f.to_dict() for f in baselined],
            "stale_baseline": list(self.stale_baseline),
            "suppressed": self.suppressed,
            "passed": self.passed,
            "strict_passed": self.strict_passed,
        }


def run_lint(
    paths: Optional[Sequence] = None,
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    rules=None,
) -> LintReport:
    """Lint ``paths`` (default: the whole repro package) against a baseline.

    ``root`` anchors the relative paths used in findings and in the
    baseline file; it defaults to the repro package directory so baselines
    stay stable regardless of where the tree is checked out.
    """
    from repro.lint.baseline import apply_baseline, load_baseline

    root = Path(root).resolve() if root is not None else default_root()
    targets = [Path(p).resolve() for p in paths] if paths else [root]
    if rules is None:
        rules = _default_rules()

    report = LintReport(root=str(root))
    all_findings: List[Finding] = []
    for file in _iter_files(targets):
        try:
            rel_path = file.relative_to(root).as_posix()
        except ValueError:
            rel_path = file.name
        findings, suppressed = lint_file(file, rel_path, rules=rules)
        all_findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1

    # Only entries for codes the active rules can emit participate: a
    # pack-restricted run (e.g. ``--perf``) must neither consume nor
    # stale-flag the other packs' baseline debt.
    active_codes = {rule.code for rule in rules} | {PARSE_ERROR_CODE}
    entries = [
        entry for entry in load_baseline(baseline_path)
        if entry.code in active_codes
    ]
    kept, baselined, stale = apply_baseline(all_findings, entries)
    report.findings = kept
    report.baselined = baselined
    report.stale_baseline = [entry.to_dict() for entry in stale]
    return report


def _artifact_order(finding: Finding) -> Tuple[str, int, str]:
    """Stable CI-artifact ordering: (path, line, code)."""
    return (finding.path, finding.line, finding.code)


def format_text(report: LintReport) -> str:
    """Human-readable rendering, one finding per line plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.code} {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry['code']} {entry['path']}: "
            f"{entry['message']} (fixed? remove it from the baseline)"
        )
    lines.append(
        f"repro lint: {report.files_checked} files, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed"
        + (f", {len(report.stale_baseline)} stale baseline entr(y/ies)"
           if report.stale_baseline else "")
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)
