"""Runtime allocation-budget sanitizer for the profiled pipeline stages.

Static rules (R013-R017, :mod:`repro.lint.perf`) catch the allocation
anti-patterns visible in the AST; this module measures the ones that are
not.  Under :func:`allocation_tracker` every ``StageProfiler`` stage
activation in the process is bracketed with :mod:`tracemalloc` readings
(numpy registers its buffers with tracemalloc), giving per-stage

- ``calls``        — activations observed,
- ``peak_bytes``   — the largest *temporary* footprint of one activation
  (peak traced bytes during the stage minus traced bytes at entry),
- ``total_net_bytes`` — bytes still allocated at exit minus entry,
  summed over activations (retained output, e.g. returned arrays).

The committed contract lives in ``benchmarks/alloc_budgets.json``: a
per-stage ``peak_bytes`` ceiling for the canonical verify workloads.
``repro verify --suite alloc`` replays those workloads under the tracker
and fails when a stage's observed temporary peak exceeds its budget —
the runtime counterpart of a lint baseline: regressions in hidden
temporaries (dtype promotions, missed preallocation) trip it even when
the numerics stay bit-identical.

Sanitizer contract (the :func:`repro.nn.sanitize` mold):

- **off by default** — no tracemalloc, and the only hot-path cost is the
  profiler's module-global ``None`` test per stage activation;
- **bit-identical numerics when on** — the tracker only reads
  ``tracemalloc`` counters; it never touches arrays, the RNG stream, or
  operation order (proven by the off-vs-on oracles in
  :mod:`repro.verify.alloc_oracles`);
- measurement is meant for single-threaded runs: tracemalloc counters
  are process-global, so concurrent stages would attribute each other's
  bytes (the frame stack is thread-local to stay *correct*, but cross-
  thread attribution is approximate by nature).
"""

from __future__ import annotations

import json
import threading
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

__all__ = [
    "AllocationTracker",
    "BudgetViolation",
    "StageAllocation",
    "allocation_tracker",
    "allocation_tracking_enabled",
    "check_budgets",
    "default_budget_path",
    "load_budgets",
]


class _State:
    """Module-level switch; int so the hot-path test is one C-level check."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = 0


STATE = _State()


def allocation_tracking_enabled() -> bool:
    """True while an :func:`allocation_tracker` context is active."""
    return bool(STATE.enabled)


@dataclass
class StageAllocation:
    """Accumulated allocation facts for one profiler stage."""

    stage: str
    calls: int = 0
    peak_bytes: int = 0
    total_net_bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "peak_bytes": self.peak_bytes,
            "total_net_bytes": self.total_net_bytes,
        }


class AllocationTracker:
    """Stage listener recording per-stage temporary bytes via tracemalloc.

    Stages nest (``serving.pool`` inside a service endpoint stage, …); a
    per-thread frame stack keeps attribution correct: entering a stage
    folds the peak observed so far into every open frame and resets the
    tracemalloc peak, so each frame's peak covers exactly its own
    activation, and a child's peak propagates back into its parent.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, StageAllocation] = {}
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- stage-listener protocol (called by _StageScope) ----------------
    def _frames(self) -> List[List]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        return frames

    def stage_enter(self, name: str) -> None:
        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return
        current, peak = tracemalloc.get_traced_memory()
        frames = self._frames()
        for frame in frames:
            frame[2] = max(frame[2], peak)
        # [name, traced bytes at entry, peak seen while this frame is open]
        frames.append([name, current, current])
        tracemalloc.reset_peak()

    def stage_exit(self, name: str) -> None:
        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return
        frames = self._frames()
        if not frames or frames[-1][0] != name:
            # Mismatched exit (listener installed mid-stage): drop.
            return
        current, peak = tracemalloc.get_traced_memory()
        _, entry_bytes, folded_peak = frames.pop()
        frame_peak = max(folded_peak, peak)
        temp = max(0, frame_peak - entry_bytes)
        net = current - entry_bytes
        with self._lock:
            entry = self._stats.get(name)
            if entry is None:
                entry = self._stats[name] = StageAllocation(name)
            entry.calls += 1
            entry.peak_bytes = max(entry.peak_bytes, temp)
            entry.total_net_bytes += net
        if frames:
            frames[-1][2] = max(frames[-1][2], frame_peak)
        tracemalloc.reset_peak()

    # -- reporting ------------------------------------------------------
    def stats(self) -> Dict[str, StageAllocation]:
        with self._lock:
            return dict(self._stats)

    def report(self) -> Dict[str, Dict[str, int]]:
        """``{stage: {"calls", "peak_bytes", "total_net_bytes"}}``."""
        with self._lock:
            return {
                name: entry.to_dict() for name, entry in self._stats.items()
            }

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()


@contextmanager
def allocation_tracker(
    tracker: Optional[AllocationTracker] = None,
) -> Iterator[AllocationTracker]:
    """Enable per-stage allocation tracking for the duration of the block.

    Starts tracemalloc if it is not already running (and stops it again
    on exit in that case), installs the tracker as the process stage
    listener, and restores the previous listener afterwards.
    """
    from repro.perf import profiler

    tracker = tracker or AllocationTracker()
    started_tracing = not tracemalloc.is_tracing()
    if started_tracing:
        tracemalloc.start()
    previous = profiler.set_stage_listener(tracker)
    previous_enabled = STATE.enabled
    STATE.enabled = 1
    try:
        yield tracker
    finally:
        STATE.enabled = previous_enabled
        profiler.set_stage_listener(previous)
        if started_tracing:
            tracemalloc.stop()


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------

@dataclass
class BudgetViolation:
    """One stage whose observed temporary peak exceeded its budget."""

    stage: str
    peak_bytes: int
    budget_bytes: int
    calls: int = 0

    @property
    def ratio(self) -> float:
        return self.peak_bytes / self.budget_bytes if self.budget_bytes else float("inf")

    def to_dict(self) -> Dict[str, float]:
        return {
            "stage": self.stage,
            "peak_bytes": self.peak_bytes,
            "budget_bytes": self.budget_bytes,
            "calls": self.calls,
            "ratio": self.ratio,
        }


def default_budget_path() -> Path:
    """``benchmarks/alloc_budgets.json`` at the repository root.

    Resolved relative to the installed package (src/repro/perf/ ->
    repo root), matching how the golden records and BENCH baselines are
    located.
    """
    return Path(__file__).resolve().parents[3] / "benchmarks" / "alloc_budgets.json"


def load_budgets(path: Optional[Path] = None) -> Dict[str, int]:
    """``{stage: peak_bytes budget}`` from the committed budget file."""
    path = Path(path) if path is not None else default_budget_path()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        stage: int(spec["peak_bytes"])
        for stage, spec in payload.get("budgets", {}).items()
    }


def check_budgets(
    stats: Dict[str, StageAllocation],
    budgets: Optional[Dict[str, int]] = None,
) -> List[BudgetViolation]:
    """Violations among measured stages that carry a budget.

    Stages without a budget are ignored (new stages opt in by being
    added to the committed file); budgeted stages that were not measured
    are the *caller's* coverage concern — the alloc oracle suite checks
    them explicitly so a silently-skipped workload cannot pass.
    """
    if budgets is None:
        budgets = load_budgets()
    violations = [
        BudgetViolation(
            stage=name,
            peak_bytes=entry.peak_bytes,
            budget_bytes=budgets[name],
            calls=entry.calls,
        )
        for name, entry in sorted(stats.items())
        if name in budgets and entry.peak_bytes > budgets[name]
    ]
    return violations
