"""Performance instrumentation: scoped timers, stage profiling, and the
runtime allocation-budget sanitizer (:mod:`repro.perf.allocations`)."""

from repro.perf.allocations import (
    AllocationTracker,
    BudgetViolation,
    StageAllocation,
    allocation_tracker,
    allocation_tracking_enabled,
    check_budgets,
    default_budget_path,
    load_budgets,
)
from repro.perf.profiler import (
    StageProfiler,
    Timer,
    set_stage_listener,
    stage_listener,
)

__all__ = [
    "StageProfiler",
    "Timer",
    "set_stage_listener",
    "stage_listener",
    "AllocationTracker",
    "BudgetViolation",
    "StageAllocation",
    "allocation_tracker",
    "allocation_tracking_enabled",
    "check_budgets",
    "default_budget_path",
    "load_budgets",
]
