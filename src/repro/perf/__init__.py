"""Performance instrumentation: scoped timers and stage profiling."""

from repro.perf.profiler import StageProfiler, Timer

__all__ = ["StageProfiler", "Timer"]
