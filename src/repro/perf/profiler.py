"""Scoped wall-time profiling for pipeline stages.

The training pipeline interleaves sampling (walk generation, context-pair
extraction) with SGD; knowing the split is what justifies — and validates —
optimising one side.  :class:`StageProfiler` accumulates wall time per named
stage with a context-manager API cheap enough to leave on in production
runs:

    profiler = StageProfiler()
    with profiler.stage("sampling.walks"):
        walks = walker.walks(...)
    profiler.report()  # {"sampling.walks": {"seconds": ..., "calls": ...}, ...}

Besides totals, each stage keeps a bounded window of recent per-activation
durations so :meth:`StageProfiler.report` can surface tail latency
(``p50_ms``/``p95_ms``/``p99_ms``) — totals alone hide the slow requests
that dominate user-perceived serving latency.

A process-wide *stage listener* (:func:`set_stage_listener`) can observe
every stage activation of every profiler.  It exists for the allocation
sanitizer (:mod:`repro.perf.allocations`): off by default, the hot path
pays one module-global ``None`` test per stage enter/exit.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional

#: The installed stage listener, or None.  A listener is any object with
#: ``stage_enter(name)`` / ``stage_exit(name)`` methods; it sees every
#: activation of every StageProfiler in the process.
_STAGE_LISTENER = None


def set_stage_listener(listener) -> "Optional[object]":
    """Install ``listener`` (or None to remove); returns the previous one."""
    global _STAGE_LISTENER
    previous = _STAGE_LISTENER
    _STAGE_LISTENER = listener
    return previous


def stage_listener():
    """The currently installed stage listener, or None."""
    return _STAGE_LISTENER

# Per-stage sample window for percentile estimation.  Bounded so a
# long-lived profiler reports recent behavior at O(1) memory; 4096 samples
# resolve a p99 to ~40 observations.
_SAMPLE_WINDOW = 4096


def _percentile(ordered: "list[float]", fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Timer:
    """A context manager measuring one wall-clock interval.

    After the ``with`` block, ``elapsed`` holds the duration in seconds.
    Re-entering restarts the measurement.
    """

    def __init__(self):
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class _StageScope:
    """One ``with profiler.stage(name)`` activation."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "StageProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageScope":
        listener = _STAGE_LISTENER
        if listener is not None:
            listener.stage_enter(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._record(self._name, time.perf_counter() - self._start)
        listener = _STAGE_LISTENER
        if listener is not None:
            listener.stage_exit(self._name)


class StageProfiler:
    """Accumulates wall time per named stage across repeated activations."""

    def __init__(self):
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._samples: Dict[str, Deque[float]] = {}

    def stage(self, name: str) -> _StageScope:
        """A context manager adding its wall time to stage ``name``."""
        return _StageScope(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1
        if name not in self._samples:
            self._samples[name] = deque(maxlen=_SAMPLE_WINDOW)
        self._samples[name].append(seconds)

    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        """Total accumulated seconds for stage ``name`` (0.0 if never run)."""
        return self._seconds.get(name, 0.0)

    def total(self) -> float:
        """Sum of all stages' accumulated seconds."""
        return sum(self._seconds.values())

    def percentiles(self, name: str) -> Dict[str, float]:
        """``{"p50_ms", "p95_ms", "p99_ms"}`` over the stage's recent window.

        Percentiles are per *activation*, in milliseconds; an unknown stage
        reads all-zero.
        """
        ordered = sorted(self._samples.get(name, ()))
        return {
            "p50_ms": 1000.0 * _percentile(ordered, 0.50),
            "p95_ms": 1000.0 * _percentile(ordered, 0.95),
            "p99_ms": 1000.0 * _percentile(ordered, 0.99),
        }

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-stage totals plus tail latency, insertion-ordered.

        Each entry carries ``seconds`` / ``calls`` / ``fraction`` (the
        stage's share of :meth:`total`, 0.0 when no time has been recorded
        at all) and the per-activation ``p50_ms``/``p95_ms``/``p99_ms``
        percentiles over the stage's recent sample window.
        """
        total = self.total()
        return {
            name: {
                "seconds": self._seconds[name],
                "calls": self._calls[name],
                "fraction": self._seconds[name] / total if total > 0 else 0.0,
                **self.percentiles(name),
            }
            for name in self._seconds
        }

    def summary(self) -> str:
        """One line per stage, largest share first — for logs."""
        report = sorted(
            self.report().items(), key=lambda item: -item[1]["seconds"]
        )
        return "\n".join(
            f"{name}: {entry['seconds']:.3f}s "
            f"({100 * entry['fraction']:.1f}%, {entry['calls']} calls, "
            f"p50 {entry['p50_ms']:.2f}ms / p95 {entry['p95_ms']:.2f}ms / "
            f"p99 {entry['p99_ms']:.2f}ms)"
            for name, entry in report
        )

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
        self._samples.clear()
