"""Statistical significance testing across seeded runs.

The paper reports HybridGNN's wins at p < 0.01 under a t-test against each
baseline.  :func:`paired_t_test` reproduces that protocol: run each model on
the same seeds, pair the per-seed metric values, and test the mean
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import EvaluationError


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a paired t-test between two models' metric samples."""

    mean_difference: float
    t_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.01) -> bool:
        """True when the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def paired_t_test(model_scores: Sequence[float], baseline_scores: Sequence[float]) -> TTestResult:
    """Paired t-test of ``model_scores`` against ``baseline_scores``.

    Inputs are per-seed metric values; their order must align seed-by-seed.
    """
    model_scores = np.asarray(model_scores, dtype=np.float64)
    baseline_scores = np.asarray(baseline_scores, dtype=np.float64)
    if model_scores.shape != baseline_scores.shape or model_scores.ndim != 1:
        raise EvaluationError("score sequences must be equal-length 1-d arrays")
    if len(model_scores) < 2:
        raise EvaluationError("a t-test needs at least two paired runs")
    diff = model_scores - baseline_scores
    if np.allclose(diff, diff[0]):
        # Zero variance: scipy returns nan; treat identical runs as p=1 and a
        # constant nonzero difference as maximally significant.
        p_value = 1.0 if abs(diff[0]) < 1e-12 else 0.0
        t_stat = np.inf if diff[0] > 0 else (-np.inf if diff[0] < 0 else 0.0)
        return TTestResult(float(diff.mean()), float(t_stat), p_value)
    t_stat, p_value = stats.ttest_rel(model_scores, baseline_scores)
    return TTestResult(float(diff.mean()), float(t_stat), float(p_value))
