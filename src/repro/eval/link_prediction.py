"""Link-prediction evaluation harness.

Models expose relationship-specific node embeddings through the
``RelationEmbedder`` protocol; scoring an edge (u, v) under relationship r
is the sigmoid of the dot product of the endpoints' embeddings — the same
decoder the paper's objective (Eq. 13) trains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Protocol

import numpy as np

from repro.datasets.splits import EvalEdges
from repro.eval.metrics import best_f1, pr_auc, roc_auc


class RelationEmbedder(Protocol):
    """Anything that yields relationship-specific node embeddings."""

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        """Embeddings e*_{v, r} of shape (len(nodes), d)."""
        ...


def edge_logits(model: RelationEmbedder, edges: EvalEdges) -> np.ndarray:
    """Raw dot-product logits for every labelled edge.

    The ranking metrics are invariant under the sigmoid, and raw logits
    avoid float saturation (which would introduce artificial ties).
    """
    src_emb = model.node_embeddings(edges.src, edges.relation)
    dst_emb = model.node_embeddings(edges.dst, edges.relation)
    return np.einsum("ij,ij->i", src_emb, dst_emb)


def edge_scores(model: RelationEmbedder, edges: EvalEdges) -> np.ndarray:
    """Sigmoid dot-product scores (probabilities) for every labelled edge."""
    logits = edge_logits(model, edges)
    return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))


@dataclass
class LinkPredictionReport:
    """Per-relationship and aggregate link-prediction metrics (in %)."""

    per_relation: Dict[str, Dict[str, float]]

    @property
    def overall(self) -> Dict[str, float]:
        """Unweighted mean over relationships, matching the paper's tables."""
        if not self.per_relation:
            return {}
        keys = next(iter(self.per_relation.values())).keys()
        return {
            key: float(np.mean([m[key] for m in self.per_relation.values()]))
            for key in keys
        }

    def __getitem__(self, metric: str) -> float:
        return self.overall[metric]


def evaluate_link_prediction(
    model: RelationEmbedder,
    eval_sets: Mapping[str, EvalEdges],
) -> LinkPredictionReport:
    """ROC-AUC / PR-AUC / F1 (as percentages) per relationship."""
    per_relation: Dict[str, Dict[str, float]] = {}
    for relation, edges in eval_sets.items():
        scores = edge_logits(model, edges)
        per_relation[relation] = {
            "roc_auc": 100.0 * roc_auc(edges.labels, scores),
            "pr_auc": 100.0 * pr_auc(edges.labels, scores),
            "f1": 100.0 * best_f1(edges.labels, scores),
        }
    return LinkPredictionReport(per_relation=per_relation)
