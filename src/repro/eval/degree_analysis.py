"""Degree-stratified recommendation analysis (Fig. 6 and Table VIII).

The paper buckets test nodes by degree and reports PR@K per bucket, showing
HybridGNN's advantage grows with degree (richer metapath-guided neighbor
samples).  :func:`degree_bucketed_ranking` reproduces that readout on top of
the per-node output of :func:`repro.eval.ranking.evaluate_ranking`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eval.ranking import RankingReport
from repro.graph.multiplex import MultiplexHeteroGraph


@dataclass(frozen=True)
class DegreeBucket:
    """PR@K / HR@K averaged over source nodes whose degree lies in [low, high)."""

    low: int
    high: int
    num_nodes: int
    pr_at_k: float
    hr_at_k: float

    @property
    def label(self) -> str:
        return f"{self.low}<=d<{self.high}"


def degree_bucketed_ranking(
    report: RankingReport,
    graph: MultiplexHeteroGraph,
    num_buckets: int = 4,
    relation: Optional[str] = None,
) -> List[DegreeBucket]:
    """Bucket the per-node ranking metrics of ``report`` by node degree.

    ``report`` must have been produced with ``keep_per_node=True``.  Degrees
    are taken over all relationships (or one, if ``relation`` is given) of
    ``graph``; buckets are equal-width over the observed degree range, as in
    Table VIII.
    """
    merged: Dict[int, List[Tuple[float, float]]] = {}
    per_node = report.per_node
    relations = [relation] if relation else list(per_node)
    for rel in relations:
        for node, metrics in per_node.get(rel, {}).items():
            merged.setdefault(node, []).append((metrics["pr_at_k"], metrics["hr_at_k"]))
    if not merged:
        return []

    nodes = np.asarray(sorted(merged))
    degrees = graph.degrees()[nodes]
    lo, hi = int(degrees.min()), int(degrees.max())
    edges = np.linspace(lo, hi + 1, num_buckets + 1)
    buckets: List[DegreeBucket] = []
    for i in range(num_buckets):
        low, high = edges[i], edges[i + 1]
        mask = (degrees >= low) & (degrees < high)
        chosen = nodes[mask]
        if len(chosen) == 0:
            buckets.append(DegreeBucket(int(low), int(high), 0, 0.0, 0.0))
            continue
        prs = [pr for node in chosen for pr, _ in merged[int(node)]]
        hrs = [hr for node in chosen for _, hr in merged[int(node)]]
        buckets.append(
            DegreeBucket(int(low), int(high), len(chosen), float(np.mean(prs)), float(np.mean(hrs)))
        )
    return buckets
