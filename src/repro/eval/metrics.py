"""Evaluation metrics: ROC-AUC, PR-AUC, F1, PR@K, HR@K (Sect. IV-C).

The binary metrics follow the paper's references: ROC-AUC (Hanley & McNeil),
PR-AUC as average precision (Davis & Goadrich), and F1 maximised over the
score threshold (the protocol of the GATNE evaluation code the paper
follows).  The top-K metrics are per-source-node precision and recall of the
ranked recommendation list.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import EvaluationError


def _check_inputs(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise EvaluationError(
            f"labels and scores must be equal-length 1-d arrays, got "
            f"{labels.shape} and {scores.shape}"
        )
    if len(labels) == 0:
        raise EvaluationError("cannot evaluate zero predictions")
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1}:
        raise EvaluationError(f"labels must be binary, got values {sorted(unique)}")
    return labels.astype(np.int64), scores


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney U) formulation."""
    labels, scores = _check_inputs(labels, scores)
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError("ROC-AUC needs at least one positive and one negative")
    ranks = stats.rankdata(scores)  # average ranks handle ties correctly
    rank_sum = float(ranks[labels == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def _threshold_counts(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative (tp, predicted-positive) counts at each *distinct* threshold.

    Grouping tied scores makes the metrics below independent of input order
    — with naive per-item cumsums, tied scores (e.g. a saturated sigmoid)
    would credit whichever label happens to be listed first.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Last index of each group of equal scores.
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0)
    boundaries = np.append(boundaries, len(sorted_scores) - 1)
    tp = np.cumsum(sorted_labels)[boundaries]
    predicted_pos = boundaries + 1
    return tp.astype(np.float64), predicted_pos.astype(np.float64)


def pr_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Average precision (the standard summary of the PR curve)."""
    labels, scores = _check_inputs(labels, scores)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise EvaluationError("PR-AUC needs at least one positive")
    tp, predicted_pos = _threshold_counts(labels, scores)
    precision = tp / predicted_pos
    recall = tp / n_pos
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(((recall - recall_prev) * precision).sum())


def best_f1(labels: np.ndarray, scores: np.ndarray) -> float:
    """Maximum F1 over all (distinct) score thresholds."""
    labels, scores = _check_inputs(labels, scores)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise EvaluationError("F1 needs at least one positive")
    tp, predicted_pos = _threshold_counts(labels, scores)
    precision = tp / predicted_pos
    recall = tp / n_pos
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.maximum(denom, 1e-12), 0.0)
    return float(f1.max())


def f1_at_threshold(labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> float:
    """F1 of the hard classification ``scores >= threshold``."""
    labels, scores = _check_inputs(labels, scores)
    predictions = (scores >= threshold).astype(np.int64)
    tp = int(((predictions == 1) & (labels == 1)).sum())
    fp = int(((predictions == 1) & (labels == 0)).sum())
    fn = int(((predictions == 0) & (labels == 1)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def precision_at_k(ranked_hits: Sequence[bool], k: int) -> float:
    """Fraction of the top-``k`` ranked items that are relevant."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    hits = np.asarray(ranked_hits[:k], dtype=bool)
    return float(hits.sum()) / k


def recall_at_k(ranked_hits: Sequence[bool], num_relevant: int, k: int) -> float:
    """Fraction of the relevant items retrieved in the top ``k`` (HR@K)."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    if num_relevant <= 0:
        raise EvaluationError("recall needs at least one relevant item")
    hits = np.asarray(ranked_hits[:k], dtype=bool)
    return float(hits.sum()) / num_relevant


def ndcg_at_k(ranked_hits: Sequence[bool], num_relevant: int, k: int) -> float:
    """Normalised discounted cumulative gain of the top-``k`` list.

    Binary relevance: DCG = sum over hit positions i (0-based) of
    1/log2(i + 2); the ideal DCG places all relevant items first.
    """
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    if num_relevant <= 0:
        raise EvaluationError("NDCG needs at least one relevant item")
    hits = np.asarray(ranked_hits[:k], dtype=bool)
    positions = np.flatnonzero(hits)
    dcg = float((1.0 / np.log2(positions + 2.0)).sum())
    # Guard against inconsistent inputs (more hits than declared relevant).
    ideal_count = min(max(num_relevant, int(hits.sum())), k)
    ideal = float((1.0 / np.log2(np.arange(ideal_count) + 2.0)).sum())
    return dcg / ideal


def reciprocal_rank(ranked_hits: Sequence[bool]) -> float:
    """1 / (rank of the first relevant item), or 0 if none is ranked."""
    hits = np.asarray(ranked_hits, dtype=bool)
    positions = np.flatnonzero(hits)
    if len(positions) == 0:
        return 0.0
    return 1.0 / float(positions[0] + 1)


def average_precision_at_k(ranked_hits: Sequence[bool], num_relevant: int,
                           k: int) -> float:
    """MAP@K component: mean of precision@i over relevant positions i <= k."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    if num_relevant <= 0:
        raise EvaluationError("AP needs at least one relevant item")
    hits = np.asarray(ranked_hits[:k], dtype=bool)
    positions = np.flatnonzero(hits)
    if len(positions) == 0:
        return 0.0
    precisions = (np.arange(len(positions)) + 1.0) / (positions + 1.0)
    # Guard against inconsistent inputs (more hits than declared relevant).
    denominator = min(max(num_relevant, len(positions)), k)
    return float(precisions.sum()) / denominator
