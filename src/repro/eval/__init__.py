"""Evaluation: metrics, link-prediction & ranking harnesses, significance."""

from repro.eval.metrics import (
    average_precision_at_k,
    best_f1,
    f1_at_threshold,
    ndcg_at_k,
    pr_auc,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    roc_auc,
)
from repro.eval.link_prediction import (
    LinkPredictionReport,
    RelationEmbedder,
    edge_scores,
    evaluate_link_prediction,
)
from repro.eval.ranking import RankingReport, evaluate_ranking
from repro.eval.significance import TTestResult, paired_t_test
from repro.eval.degree_analysis import DegreeBucket, degree_bucketed_ranking

__all__ = [
    "roc_auc",
    "pr_auc",
    "best_f1",
    "f1_at_threshold",
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "reciprocal_rank",
    "average_precision_at_k",
    "RelationEmbedder",
    "edge_scores",
    "evaluate_link_prediction",
    "LinkPredictionReport",
    "evaluate_ranking",
    "RankingReport",
    "paired_t_test",
    "TTestResult",
    "DegreeBucket",
    "degree_bucketed_ranking",
]
