"""Top-K recommendation evaluation: PR@K and HR@K (Sect. IV-C).

For every source node with at least one positive test edge under a
relationship, the candidate set is all nodes of the positives' type minus
the node's training neighbors; candidates are ranked by embedding dot
product.  PR@K is precision of the top-K list, HR@K (hit ratio) is the
recall of the node's positives in the top-K, both averaged over source
nodes — which is why the paper's absolute values are small.

Ranking is served by :class:`repro.serving.BatchServingEngine` (each
relation's embedding table fetched once, mask-based candidate pools); the
historical per-source loop survives as :func:`_reference_ranked_candidates`
and is held bit-identical to the engine by the ``serving`` differential
oracles.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.datasets.splits import EvalEdges
from repro.eval.link_prediction import RelationEmbedder
from repro.eval.metrics import (
    average_precision_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.utils.rng import as_rng


@dataclass
class RankingReport:
    """Averaged top-K metrics, per relationship and per source node."""

    k: int
    per_relation: Dict[str, Dict[str, float]]
    per_node: Dict[str, Dict[int, Dict[str, float]]] = field(default_factory=dict)

    @property
    def overall(self) -> Dict[str, float]:
        if not self.per_relation:
            return {}
        keys = next(iter(self.per_relation.values())).keys()
        return {
            key: float(np.mean([m[key] for m in self.per_relation.values()]))
            for key in keys
        }

    def __getitem__(self, metric: str) -> float:
        return self.overall[metric]


def _reference_ranked_candidates(
    model: RelationEmbedder,
    train_graph: MultiplexHeteroGraph,
    source: int,
    relation: str,
    target_type: str,
) -> np.ndarray:
    """The pre-engine per-source ranking: set-built pool, re-fetched
    embeddings, full stable argsort.  Kept as the differential-oracle truth
    for the serving engine's ``rank_all``."""
    candidates = train_graph.nodes_of_type(target_type)
    known = set(train_graph.neighbors(source, relation).tolist())
    known.add(source)
    mask = np.fromiter(
        (c not in known for c in candidates), dtype=bool, count=len(candidates)
    )
    pool = candidates[mask]
    if len(pool) == 0:
        return pool
    src_emb = model.node_embeddings(np.asarray([source]), relation)[0]
    pool_emb = model.node_embeddings(pool, relation)
    scores = pool_emb @ src_emb
    return pool[np.argsort(-scores, kind="stable")]


def evaluate_ranking(
    model: RelationEmbedder,
    train_graph: MultiplexHeteroGraph,
    eval_sets: Mapping[str, EvalEdges],
    k: int = 10,
    keep_per_node: bool = False,
    max_sources: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> RankingReport:
    """Compute PR@K / HR@K for every relationship in ``eval_sets``.

    ``max_sources`` caps the number of evaluated source nodes per
    relationship (uniformly subsampled) to bound cost on large graphs.
    """
    from repro.serving import BatchServingEngine

    engine = BatchServingEngine(model, train_graph)
    per_relation: Dict[str, Dict[str, float]] = {}
    per_node: Dict[str, Dict[int, Dict[str, float]]] = {}

    for relation, edges in eval_sets.items():
        pos_src, pos_dst = edges.positives
        positives_by_src: Dict[int, List[int]] = defaultdict(list)
        for u, v in zip(pos_src.tolist(), pos_dst.tolist()):
            positives_by_src[u].append(v)
        sources = sorted(positives_by_src)
        if max_sources is not None and len(sources) > max_sources:
            chooser = as_rng(rng if rng is not None else 0)
            sources = sorted(chooser.choice(sources, size=max_sources, replace=False).tolist())
        if not sources:
            continue

        # Candidate pools are the positives' node type (positives of one
        # source share a type in all our datasets; mixed types would group).
        by_type: Dict[str, List[int]] = defaultdict(list)
        for u in sources:
            by_type[train_graph.node_type(positives_by_src[u][0])].append(u)
        ranked_by_source: Dict[int, np.ndarray] = {}
        for target_type, group in by_type.items():
            for u, ranked in zip(
                group, engine.rank_all(group, relation, target_type=target_type)
            ):
                ranked_by_source[u] = ranked

        precisions: List[float] = []
        recalls: List[float] = []
        ndcgs: List[float] = []
        rranks: List[float] = []
        aps: List[float] = []
        node_metrics: Dict[int, Dict[str, float]] = {}
        for u in sources:
            ranked = ranked_by_source[u]
            if len(ranked) == 0:
                continue
            target_set = set(positives_by_src[u])
            hits = [int(c) in target_set for c in ranked]
            top_hits = hits[:k]
            prec = precision_at_k(top_hits, k)
            rec = recall_at_k(top_hits, len(target_set), k)
            precisions.append(prec)
            recalls.append(rec)
            ndcgs.append(ndcg_at_k(top_hits, len(target_set), k))
            rranks.append(reciprocal_rank(hits))
            aps.append(average_precision_at_k(top_hits, len(target_set), k))
            if keep_per_node:
                node_metrics[u] = {"pr_at_k": prec, "hr_at_k": rec}

        if precisions:
            per_relation[relation] = {
                "pr_at_k": float(np.mean(precisions)),
                "hr_at_k": float(np.mean(recalls)),
                "ndcg_at_k": float(np.mean(ndcgs)),
                "mrr": float(np.mean(rranks)),
                "map_at_k": float(np.mean(aps)),
            }
            if keep_per_node:
                per_node[relation] = node_metrics

    return RankingReport(k=k, per_relation=per_relation, per_node=per_node)
