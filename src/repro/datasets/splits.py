"""Train/validation/test edge splitting with paired negatives.

The paper's protocol (Sect. IV-C): 85% of edges train, 5% validate, 10%
test; for every positive edge in the validation and test sets one negative
edge is sampled.  Negatives keep the source endpoint and replace the
destination with a node of the same type that is *not* connected under the
relationship in the full graph, so a model cannot score them by type alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.utils.rng import SeedLike, as_rng


@dataclass
class EvalEdges:
    """Labelled evaluation edges under one relationship."""

    relation: str
    src: np.ndarray
    dst: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        if not (len(self.src) == len(self.dst) == len(self.labels)):
            raise DatasetError("src, dst and labels must have equal lengths")

    def __len__(self) -> int:
        return len(self.src)

    @property
    def positives(self) -> Tuple[np.ndarray, np.ndarray]:
        mask = self.labels == 1
        return self.src[mask], self.dst[mask]


@dataclass
class EdgeSplit:
    """The result of :func:`split_edges`."""

    train_graph: MultiplexHeteroGraph
    val: Dict[str, EvalEdges]
    test: Dict[str, EvalEdges]

    def all_eval_relations(self) -> List[str]:
        return list(self.test)


def _sample_negatives(
    graph: MultiplexHeteroGraph,
    relation: str,
    src: np.ndarray,
    dst: np.ndarray,
    rng: np.random.Generator,
    max_tries: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """One negative per positive: same source, corrupted destination."""
    neg_src = src.copy()
    neg_dst = np.empty_like(dst)
    for i, (u, v) in enumerate(zip(src, dst)):
        node_type = graph.node_type(int(v))
        candidates = graph.nodes_of_type(node_type)
        for _ in range(max_tries):
            candidate = int(candidates[rng.integers(len(candidates))])
            if candidate != int(u) and not graph.has_edge(int(u), candidate, relation):
                neg_dst[i] = candidate
                break
        else:
            raise DatasetError(
                f"could not find a negative for ({u}, {v}) under {relation!r}; "
                "the graph is too dense for corruption-based negatives"
            )
    return neg_src, neg_dst


def split_edges(
    graph: MultiplexHeteroGraph,
    train_fraction: float = 0.85,
    val_fraction: float = 0.05,
    rng: SeedLike = None,
) -> EdgeSplit:
    """Split every relationship's edges into train / val / test sets.

    The returned ``train_graph`` shares the node universe of ``graph`` but
    contains only the training edges.  ``val`` and ``test`` hold positives
    plus an equal number of sampled negatives per relationship.
    """
    if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
        raise DatasetError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1:
        raise DatasetError("train + val fractions must leave room for a test set")
    rng = as_rng(rng)

    train_edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    val_sets: Dict[str, EvalEdges] = {}
    test_sets: Dict[str, EvalEdges] = {}

    for relation in graph.schema.relationships:
        src, dst = graph.edges(relation)
        count = len(src)
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            train_edges[relation] = (empty, empty)
            continue
        order = rng.permutation(count)
        n_train = max(1, int(round(train_fraction * count)))
        n_val = int(round(val_fraction * count))
        n_train = min(n_train, count - 1) if count > 1 else count
        train_idx = order[:n_train]
        val_idx = order[n_train: n_train + n_val]
        test_idx = order[n_train + n_val:]
        train_edges[relation] = (src[train_idx], dst[train_idx])

        for name, idx, store in (
            ("val", val_idx, val_sets),
            ("test", test_idx, test_sets),
        ):
            if len(idx) == 0:
                continue
            pos_src, pos_dst = src[idx], dst[idx]
            neg_src, neg_dst = _sample_negatives(graph, relation, pos_src, pos_dst, rng)
            store[relation] = EvalEdges(
                relation=relation,
                src=np.concatenate([pos_src, neg_src]),
                dst=np.concatenate([pos_dst, neg_dst]),
                labels=np.concatenate(
                    [np.ones(len(idx), dtype=np.int64), np.zeros(len(idx), dtype=np.int64)]
                ),
            )

    train_graph = MultiplexHeteroGraph(
        graph.schema, graph.node_type_codes.copy(), train_edges
    )
    return EdgeSplit(train_graph=train_graph, val=val_sets, test=test_sets)
