"""Dataset-alikes matching the schemas of the paper's five datasets.

Each function returns a :class:`Dataset` whose graph mirrors the node types,
relationships and metapath schemes of Table II at a configurable scale
(``scale=1.0`` targets CPU-friendly sizes; the originals are 1-2 orders of
magnitude larger).  The alikes keep the characteristics the experiments
probe: Amazon/YouTube are single-typed multiplex graphs (category G1 of
Sect. III-G), IMDb is multi-typed single-relationship (G2), Taobao/Kuaishou
are fully multiplex heterogeneous (G3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DatasetError
from repro.datasets.synthetic import RelationshipSpec, SyntheticConfig, generate_graph
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme, intra_relationship_schemes
from repro.utils.rng import SeedLike, as_rng


@dataclass
class Dataset:
    """A graph bundled with its metapath configuration (one Table II row)."""

    name: str
    graph: MultiplexHeteroGraph
    metapath_patterns: Tuple[str, ...]
    abbreviations: Dict[str, str]

    def schemes_for(self, relation: str) -> List[MetapathScheme]:
        """PS_{r}: the predefined intra-relationship schemes under ``relation``."""
        return [
            MetapathScheme.parse(pattern, relation, self.abbreviations)
            for pattern in self.metapath_patterns
        ]

    def all_schemes(self) -> Dict[str, List[MetapathScheme]]:
        """PS_{r} for every relationship r."""
        return intra_relationship_schemes(
            self.metapath_patterns,
            self.graph.schema.relationships,
            self.abbreviations,
        )


def _scaled(count: int, scale: float) -> int:
    return max(8, int(round(count * scale)))


def amazon_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """Amazon-Electronics alike: 1 node type, 2 relationships, scheme I-I-I.

    Original: 10,099 products, 148,659 edges under {common bought,
    common viewed}; the two co-occurrence relationships are strongly
    correlated.
    """
    rng = as_rng(seed)
    items = _scaled(400, scale)
    config = SyntheticConfig(
        node_counts={"item": items},
        relationships=(
            RelationshipSpec("common_bought", "item", "item", _scaled(2400, scale)),
            RelationshipSpec(
                "common_viewed", "item", "item", _scaled(3600, scale),
                overlap_with="common_bought", overlap=0.20, community_shift=1,
            ),
        ),
        num_communities=max(4, items // 60),
    )
    return Dataset("amazon", generate_graph(config, rng), ("I-I-I",), {"I": "item"})


def youtube_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """YouTube alike: 1 node type, 5 relationships, scheme I-I-I.

    Original: 2,000 users, 1.3M edges under {contact, shared friends,
    shared subscription, shared subscriber, shared videos}.  The derived
    "shared X" relationships correlate with the contact graph, which is what
    makes the Table VI inter-relationship uplift possible.
    """
    rng = as_rng(seed)
    users = _scaled(300, scale)
    config = SyntheticConfig(
        node_counts={"user": users},
        relationships=(
            RelationshipSpec("contact", "user", "user", _scaled(1500, scale), noise=0.10),
            RelationshipSpec(
                "shared_friends", "user", "user", _scaled(2100, scale),
                overlap_with="contact", overlap=0.45,
            ),
            RelationshipSpec(
                "shared_subscription", "user", "user", _scaled(1800, scale),
                community_shift=1,
            ),
            RelationshipSpec(
                "shared_subscriber", "user", "user", _scaled(1800, scale),
                overlap_with="shared_subscription", overlap=0.30, community_shift=1,
            ),
            RelationshipSpec(
                "shared_videos", "user", "user", _scaled(1200, scale),
                community_shift=2,
            ),
        ),
        num_communities=max(4, users // 50),
    )
    return Dataset("youtube", generate_graph(config, rng), ("I-I-I",), {"I": "user"})


def imdb_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """IMDb alike: 3 node types, 1 relationship, six Table II schemes.

    Original: 11,616 nodes (movies/directors/actors), 34,212 edges under a
    single credit relationship.  This is category G2: the hybrid aggregation
    flows matter, the relationship-level attention degenerates.
    """
    rng = as_rng(seed)
    movies = _scaled(220, scale)
    directors = _scaled(80, scale)
    actors = _scaled(260, scale)
    config = SyntheticConfig(
        node_counts={"movie": movies, "director": directors, "actor": actors},
        relationships=(
            RelationshipSpec("credit", "movie", "director", _scaled(900, scale), noise=0.12),
        ),
        num_communities=max(4, movies // 40),
    )
    # The generator supports one (src, dst) pair per relationship, so build
    # the two credit families separately and merge them into one relationship.
    config_actors = SyntheticConfig(
        node_counts={"movie": movies, "director": directors, "actor": actors},
        relationships=(
            RelationshipSpec("credit", "movie", "actor", _scaled(1600, scale), noise=0.12),
        ),
        num_communities=max(4, movies // 40),
    )
    graph_directors = generate_graph(config, rng)
    graph_actors = generate_graph(config_actors, rng)
    # Merge: same node universe (identical node_counts ordering), union edges.
    import numpy as np

    from repro.graph.builder import graph_from_edge_arrays

    src1, dst1 = graph_directors.edges("credit")
    src2, dst2 = graph_actors.edges("credit")
    merged = {
        "credit": (
            np.concatenate([src1, src2]),
            np.concatenate([dst1, dst2]),
        )
    }
    graph = graph_from_edge_arrays(
        graph_directors.schema, graph_directors.node_type_codes.copy(), merged
    )
    patterns = ("M-D-M", "M-A-M", "D-M-D", "A-M-A", "D-M-A-M-D", "A-M-D-M-A")
    return Dataset(
        "imdb", graph, patterns, {"M": "movie", "D": "director", "A": "actor"}
    )


def taobao_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """Taobao alike: 2 node types, 4 relationships, schemes U-I-U and I-U-I.

    Original: 64,737 nodes, 144,511 edges under {page view, add to cart,
    purchase, item favoring}.  Behaviours form a funnel: carts, purchases and
    favourites are sparse subsets correlated with page views.
    """
    rng = as_rng(seed)
    users = _scaled(260, scale)
    items = _scaled(200, scale)
    config = SyntheticConfig(
        node_counts={"user": users, "item": items},
        relationships=(
            RelationshipSpec("page_view", "user", "item", _scaled(2600, scale), noise=0.12),
            RelationshipSpec(
                "add_to_cart", "user", "item", _scaled(1000, scale),
                community_shift=1,
            ),
            RelationshipSpec(
                "purchase", "user", "item", _scaled(700, scale),
                overlap_with="add_to_cart", overlap=0.50, community_shift=1,
            ),
            RelationshipSpec(
                "favorite", "user", "item", _scaled(800, scale),
                overlap_with="page_view", overlap=0.40,
            ),
        ),
        num_communities=max(4, (users + items) // 70),
    )
    return Dataset(
        "taobao", generate_graph(config, rng), ("U-I-U", "I-U-I"),
        {"U": "user", "I": "item"},
    )


def taobao_xl_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """Million-node Taobao alike for training-at-scale benchmarks.

    Same schema, funnel structure and metapath schemes as
    :func:`taobao_like`, but sized for the sharded trainer: ``scale=1.0``
    is 10⁶ nodes (600k users, 400k items) and ~2.45M edges, generated
    with the vectorized engine (the loop engine would take hours here).
    Communities are capped at 32 so each stays large enough to be
    learnable at this sparsity.
    """
    rng = as_rng(seed)
    users = _scaled(600_000, scale)
    items = _scaled(400_000, scale)
    config = SyntheticConfig(
        node_counts={"user": users, "item": items},
        relationships=(
            RelationshipSpec(
                "page_view", "user", "item", _scaled(1_200_000, scale),
                noise=0.12,
            ),
            RelationshipSpec(
                "add_to_cart", "user", "item", _scaled(500_000, scale),
                community_shift=1,
            ),
            RelationshipSpec(
                "purchase", "user", "item", _scaled(350_000, scale),
                overlap_with="add_to_cart", overlap=0.50, community_shift=1,
            ),
            RelationshipSpec(
                "favorite", "user", "item", _scaled(400_000, scale),
                overlap_with="page_view", overlap=0.40,
            ),
        ),
        num_communities=32,
        engine="vectorized",
    )
    return Dataset(
        "taobao-xl", generate_graph(config, rng), ("U-I-U", "I-U-I"),
        {"U": "user", "I": "item"},
    )


def kuaishou_like(scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """Kuaishou alike: 3 node types, 4 relationships, four Table II schemes.

    Original: 105,749 nodes, 175,870 edges among users/authors/videos under
    {click, like, comment, download} sampled from one day of logs.  Each
    relationship connects both user-author and user-video pairs; engagement
    relationships correlate with clicks.
    """
    rng = as_rng(seed)
    users = _scaled(260, scale)
    authors = _scaled(90, scale)
    videos = _scaled(210, scale)
    node_counts = {"user": users, "author": authors, "video": videos}
    communities = max(4, (users + authors + videos) // 90)

    def family(dst_type: str, base_edges: int) -> MultiplexHeteroGraph:
        factor = 1.0 if dst_type == "video" else 0.7
        config = SyntheticConfig(
            node_counts=node_counts,
            relationships=(
                RelationshipSpec(
                    "click", "user", dst_type, _scaled(base_edges, scale), noise=0.12
                ),
                RelationshipSpec(
                    "like", "user", dst_type, _scaled(int(base_edges * 0.45), scale),
                    overlap_with="click", overlap=0.15, community_shift=1,
                ),
                RelationshipSpec(
                    "comment", "user", dst_type, _scaled(int(base_edges * 0.3), scale),
                    overlap_with="click", overlap=0.45,
                ),
                RelationshipSpec(
                    "download", "user", dst_type, _scaled(int(base_edges * 0.2), scale),
                    overlap_with="like", overlap=0.50, community_shift=1,
                ),
            ),
            num_communities=communities,
        )
        return generate_graph(config, rng)

    graph_videos = family("video", 1700)
    graph_authors = family("author", 1100)

    import numpy as np

    from repro.graph.builder import graph_from_edge_arrays

    merged = {}
    for relation in graph_videos.schema.relationships:
        src1, dst1 = graph_videos.edges(relation)
        src2, dst2 = graph_authors.edges(relation)
        merged[relation] = (
            np.concatenate([src1, src2]),
            np.concatenate([dst1, dst2]),
        )
    graph = graph_from_edge_arrays(
        graph_videos.schema, graph_videos.node_type_codes.copy(), merged
    )
    return Dataset(
        "kuaishou", graph, ("U-A-U", "A-U-A", "V-U-V", "U-V-U"),
        {"U": "user", "A": "author", "V": "video"},
    )


_REGISTRY = {
    "amazon": amazon_like,
    "youtube": youtube_like,
    "imdb": imdb_like,
    "taobao": taobao_like,
    "taobao-xl": taobao_xl_like,
    "kuaishou": kuaishou_like,
}


def available_datasets() -> List[str]:
    """Names of the five dataset-alikes."""
    return sorted(_REGISTRY)


def load_dataset(name: str, scale: float = 1.0, seed: SeedLike = 0) -> Dataset:
    """Instantiate a dataset-alike by name (``amazon`` … ``kuaishou``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return factory(scale=scale, seed=seed)
