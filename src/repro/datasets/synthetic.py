"""Synthetic multiplex heterogeneous graph generation.

The paper evaluates on five proprietary/public datasets that are not
available in this environment, so experiments run on *dataset-alikes*:
seeded random graphs that reproduce the properties link prediction depends
on (see DESIGN.md):

1. **Schema** — the same node types, relationships and metapath schemes as
   the original (Table II).
2. **Community structure** — nodes carry latent communities; edges form
   mostly within communities, so links are predictable from structure.
3. **Degree skew** — node popularity follows a Zipf-like law, giving the
   long-tail degree distributions the Fig. 6 / Table VIII case studies rely
   on.
4. **Multiplex correlation** — a relationship can copy a fraction of its
   edges from another relationship and share the community structure, so
   inter-relationship information genuinely helps (the property Table V/VI
   measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.builder import graph_from_edge_arrays
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import GraphSchema
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class RelationshipSpec:
    """Generation recipe for one relationship.

    Parameters
    ----------
    name:
        Relationship name.
    src_type / dst_type:
        Endpoint node types (equal for within-type relationships).
    num_edges:
        Target number of distinct edges.
    noise:
        Fraction of edges drawn across communities (0 = perfectly assortative).
    overlap_with:
        Name of an earlier relationship to correlate with; ``overlap`` of the
        edges are copied from it (multiplexity: the same node pair connected
        under several relationships).
    overlap:
        Fraction in [0, 1] of edges copied from ``overlap_with``.
    community_shift:
        Relationship-specific semantics: fresh edges connect a source in
        community c to targets in community (c + shift) mod K.  Distinct
        shifts make one shared embedding space insufficient — exactly the
        situation where relationship-specific representations (the paper's
        subject) beat relation-agnostic baselines.
    """

    name: str
    src_type: str
    dst_type: str
    num_edges: int
    noise: float = 0.15
    overlap_with: Optional[str] = None
    overlap: float = 0.0
    community_shift: int = 0


#: Edge-generation engines: ``loop`` is the original one-draw-at-a-time
#: reference (every golden snapshot was generated with it, so it must stay
#: bit-identical); ``vectorized`` draws whole batches through precomputed
#: CDFs and scales to million-node graphs.
ENGINES = ("loop", "vectorized")


@dataclass(frozen=True)
class SyntheticConfig:
    """Full recipe for a synthetic multiplex heterogeneous graph."""

    node_counts: Dict[str, int]
    relationships: Tuple[RelationshipSpec, ...]
    num_communities: int = 8
    popularity_skew: float = 0.8
    engine: str = "loop"

    def __post_init__(self):
        if not self.node_counts:
            raise DatasetError("node_counts must not be empty")
        if self.engine not in ENGINES:
            raise DatasetError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        for node_type, count in self.node_counts.items():
            if count <= 0:
                raise DatasetError(f"node type {node_type!r} has count {count}")
        if self.num_communities <= 0:
            raise DatasetError("num_communities must be positive")
        seen = set()
        for spec in self.relationships:
            if spec.name in seen:
                raise DatasetError(f"duplicate relationship {spec.name!r}")
            seen.add(spec.name)
            for endpoint in (spec.src_type, spec.dst_type):
                if endpoint not in self.node_counts:
                    raise DatasetError(
                        f"relationship {spec.name!r} references unknown node "
                        f"type {endpoint!r}"
                    )
            if not 0.0 <= spec.noise <= 1.0:
                raise DatasetError(f"noise must be in [0,1] for {spec.name!r}")
            if not 0.0 <= spec.overlap <= 1.0:
                raise DatasetError(f"overlap must be in [0,1] for {spec.name!r}")
            if spec.community_shift < 0:
                raise DatasetError(f"community_shift must be >= 0 for {spec.name!r}")
            if spec.overlap > 0 and spec.overlap_with not in seen - {spec.name}:
                raise DatasetError(
                    f"{spec.name!r} overlaps with {spec.overlap_with!r}, which must "
                    "be defined earlier"
                )

    @property
    def schema(self) -> GraphSchema:
        return GraphSchema(
            tuple(self.node_counts), tuple(spec.name for spec in self.relationships)
        )


def _zipf_weights(count: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Shuffled Zipf-like popularity weights summing to 1."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    rng.shuffle(weights)
    return weights / weights.sum()


class SyntheticGenerator:
    """Generates :class:`MultiplexHeteroGraph` instances from a config."""

    def __init__(self, config: SyntheticConfig, rng: SeedLike = None):
        self.config = config
        self._rng = as_rng(rng)

    # ------------------------------------------------------------------
    def generate(self) -> MultiplexHeteroGraph:
        config = self.config
        rng = self._rng
        schema = config.schema

        # Assign node ids (contiguous per type) and communities.
        type_codes: List[int] = []
        id_ranges: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for code, (node_type, count) in enumerate(config.node_counts.items()):
            id_ranges[node_type] = (cursor, cursor + count)
            type_codes.extend([code] * count)
            cursor += count
        num_nodes = cursor
        communities = rng.integers(0, config.num_communities, size=num_nodes)

        # Per-type popularity and per-(type, community) node pools.
        popularity: Dict[str, np.ndarray] = {}
        pools: Dict[Tuple[str, int], np.ndarray] = {}
        pool_weights: Dict[Tuple[str, int], np.ndarray] = {}
        for node_type, (start, stop) in id_ranges.items():
            weights = _zipf_weights(stop - start, config.popularity_skew, rng)
            popularity[node_type] = weights
            for community in range(config.num_communities):
                members = np.flatnonzero(communities[start:stop] == community) + start
                pools[(node_type, community)] = members
                if len(members):
                    w = weights[members - start]
                    pool_weights[(node_type, community)] = w / w.sum()

        edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        generate_one = (
            self._generate_relationship_vectorized
            if config.engine == "vectorized"
            else self._generate_relationship
        )
        for spec in config.relationships:
            src, dst = generate_one(
                spec, id_ranges, communities, popularity, pools, pool_weights, edges
            )
            edges[spec.name] = (src, dst)

        return graph_from_edge_arrays(schema, type_codes, edges)

    # ------------------------------------------------------------------
    def _generate_relationship(
        self,
        spec: RelationshipSpec,
        id_ranges: Dict[str, Tuple[int, int]],
        communities: np.ndarray,
        popularity: Dict[str, np.ndarray],
        pools: Dict[Tuple[str, int], np.ndarray],
        pool_weights: Dict[Tuple[str, int], np.ndarray],
        existing: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        rng = self._rng
        num_communities = self.config.num_communities
        src_start, src_stop = id_ranges[spec.src_type]
        dst_start, dst_stop = id_ranges[spec.dst_type]
        seen = set()
        src_list: List[int] = []
        dst_list: List[int] = []

        def try_add(u: int, v: int) -> None:
            if u == v:
                return
            key = (u, v) if u < v else (v, u)
            if key in seen:
                return
            seen.add(key)
            src_list.append(u)
            dst_list.append(v)

        # Phase 1: copy correlated edges from the base relationship.
        if spec.overlap > 0 and spec.overlap_with is not None:
            base_src, base_dst = existing[spec.overlap_with]
            want = int(spec.overlap * spec.num_edges)
            if len(base_src):
                take = rng.choice(len(base_src), size=min(want, len(base_src)), replace=False)
                for u, v in zip(base_src[take], base_dst[take]):
                    try_add(int(u), int(v))

        # Phase 2: community-assortative edges with popularity-skewed endpoints.
        src_pop = popularity[spec.src_type]
        attempts = 0
        max_attempts = 50 * spec.num_edges + 100
        while len(src_list) < spec.num_edges and attempts < max_attempts:
            attempts += 1
            u = src_start + int(rng.choice(src_stop - src_start, p=src_pop))
            if rng.random() < spec.noise:
                v = int(rng.integers(dst_start, dst_stop))
            else:
                community = (int(communities[u]) + spec.community_shift) % num_communities
                pool = pools[(spec.dst_type, community)]
                if len(pool) == 0:
                    continue
                weights = pool_weights[(spec.dst_type, int(community))]
                v = int(rng.choice(pool, p=weights))
            try_add(u, v)

        if len(src_list) < max(1, spec.num_edges // 2):
            raise DatasetError(
                f"could not generate enough edges for {spec.name!r}: "
                f"{len(src_list)}/{spec.num_edges} (graph too dense for its size?)"
            )
        return (
            np.asarray(src_list, dtype=np.int64),
            np.asarray(dst_list, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    #: Batched draw rounds before the vectorized engine gives up — the
    #: analogue of the loop engine's 50×num_edges attempt budget.
    MAX_VECTORIZED_ROUNDS = 60

    def _generate_relationship_vectorized(
        self,
        spec: RelationshipSpec,
        id_ranges: Dict[str, Tuple[int, int]],
        communities: np.ndarray,
        popularity: Dict[str, np.ndarray],
        pools: Dict[Tuple[str, int], np.ndarray],
        pool_weights: Dict[Tuple[str, int], np.ndarray],
        existing: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched counterpart of :meth:`_generate_relationship`.

        Same two phases and the same distributions, but endpoints come in
        whole batches: popularity and pool draws go through precomputed
        CDFs + ``searchsorted`` instead of per-edge ``rng.choice(p=...)``
        (which rescans its distribution on every call), and undirected
        dedup uses encoded ``low * N + high`` keys instead of a Python
        set.  Draw streams differ from the loop engine by construction —
        the loop engine stays the default precisely so goldens never move.
        """
        rng = self._rng
        num_communities = self.config.num_communities
        src_start, src_stop = id_ranges[spec.src_type]
        dst_start, dst_stop = id_ranges[spec.dst_type]
        total_nodes = max(stop for _, stop in id_ranges.values())

        seen_keys = np.empty(0, dtype=np.int64)
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        count = 0

        def admit(u: np.ndarray, v: np.ndarray) -> None:
            """Drop self-loops and already-seen undirected pairs; keep rest."""
            nonlocal seen_keys, count
            valid = u != v
            u, v = u[valid], v[valid]
            low = np.minimum(u, v)
            keys = low * total_nodes + (u + v - low)
            _, first = np.unique(keys, return_index=True)
            order = np.sort(first)  # batch-dedup, original order kept
            u, v, keys = u[order], v[order], keys[order]
            fresh = ~np.isin(keys, seen_keys)
            u, v, keys = u[fresh], v[fresh], keys[fresh]
            seen_keys = np.concatenate([seen_keys, keys])
            src_parts.append(u)
            dst_parts.append(v)
            count += len(u)

        # Phase 1: copy correlated edges from the base relationship.
        if spec.overlap > 0 and spec.overlap_with is not None:
            base_src, base_dst = existing[spec.overlap_with]
            want = int(spec.overlap * spec.num_edges)
            if len(base_src):
                take = rng.choice(
                    len(base_src), size=min(want, len(base_src)), replace=False
                )
                admit(base_src[take], base_dst[take])

        # Phase 2: community-assortative edges, popularity-skewed endpoints.
        src_cdf = np.cumsum(popularity[spec.src_type])
        pool_cdfs: Dict[int, np.ndarray] = {}
        rounds = 0
        while count < spec.num_edges and rounds < self.MAX_VECTORIZED_ROUNDS:
            rounds += 1
            need = spec.num_edges - count
            # Over-draw to absorb dedup/self-loop losses in one round.
            batch = need + need // 4 + 64
            u = src_start + np.searchsorted(
                src_cdf, rng.random(batch), side="right"
            )
            np.minimum(u, src_stop - 1, out=u)  # guard fp cdf tail
            noise_mask = rng.random(batch) < spec.noise
            v = np.full(batch, -1, dtype=np.int64)
            num_noisy = int(noise_mask.sum())
            if num_noisy:
                v[noise_mask] = rng.integers(
                    dst_start, dst_stop, size=num_noisy
                )
            assort = np.flatnonzero(~noise_mask)
            if len(assort):
                target = (
                    communities[u[assort]] + spec.community_shift
                ) % num_communities
                for community in np.unique(target):
                    community = int(community)
                    pool = pools[(spec.dst_type, community)]
                    if len(pool) == 0:
                        continue  # those slots stay -1 and are dropped
                    if community not in pool_cdfs:
                        pool_cdfs[community] = np.cumsum(
                            pool_weights[(spec.dst_type, community)]
                        )
                    cdf = pool_cdfs[community]
                    slots = assort[target == community]
                    positions = np.searchsorted(
                        cdf, rng.random(len(slots)), side="right"
                    )
                    np.minimum(positions, len(pool) - 1, out=positions)
                    v[slots] = pool[positions]
            ok = v >= 0
            admit(u[ok], v[ok])

        if count < max(1, spec.num_edges // 2):
            raise DatasetError(
                f"could not generate enough edges for {spec.name!r}: "
                f"{count}/{spec.num_edges} (graph too dense for its size?)"
            )
        src = np.concatenate(src_parts) if src_parts else np.empty(0, np.int64)
        dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, np.int64)
        return (
            src[: spec.num_edges].astype(np.int64, copy=False),
            dst[: spec.num_edges].astype(np.int64, copy=False),
        )


def generate_graph(config: SyntheticConfig, rng: SeedLike = None) -> MultiplexHeteroGraph:
    """One-shot convenience wrapper around :class:`SyntheticGenerator`."""
    return SyntheticGenerator(config, rng=rng).generate()
