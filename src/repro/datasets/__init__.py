"""Dataset generation: synthetic multiplex graphs and the five alikes."""

from repro.datasets.synthetic import (
    RelationshipSpec,
    SyntheticConfig,
    SyntheticGenerator,
    generate_graph,
)
from repro.datasets.zoo import (
    Dataset,
    amazon_like,
    available_datasets,
    imdb_like,
    kuaishou_like,
    load_dataset,
    taobao_like,
    youtube_like,
)
from repro.datasets.splits import EdgeSplit, EvalEdges, split_edges

__all__ = [
    "RelationshipSpec",
    "SyntheticConfig",
    "SyntheticGenerator",
    "generate_graph",
    "Dataset",
    "amazon_like",
    "youtube_like",
    "imdb_like",
    "taobao_like",
    "kuaishou_like",
    "load_dataset",
    "available_datasets",
    "EdgeSplit",
    "EvalEdges",
    "split_edges",
]
