"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables so the output is directly
comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    n_cols = max(len(row) for row in rendered)
    widths = [0] * n_cols
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(rendered):
        padded = [cell.ljust(widths[idx]) for idx, cell in enumerate(row)]
        lines.append(" | ".join(padded).rstrip())
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)
