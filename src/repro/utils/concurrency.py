"""Runtime lock-discipline sanitizer for the concurrent stack.

The serving service is threaded (:mod:`repro.serving.service`) and the
skip-gram trainer forks hogwild workers over shared ``RawArray`` views
(:mod:`repro.train.parallel`).  The static rules in
:mod:`repro.lint.concurrency` catch lexically-visible discipline
violations; this module catches the *dynamic* ones the AST cannot see:

- **Lock-order inversions.**  :func:`checked_lock` /
  :func:`checked_rlock` / :func:`checked_condition` wrap the standard
  ``threading`` primitives and, while the sanitizer is enabled, record
  every (held-lock, acquired-lock) pair into a per-process
  lock-acquisition-order graph.  Acquiring a lock that would complete a
  cycle in that graph — i.e. some thread has taken the same locks in the
  opposite order — raises :class:`repro.errors.LockOrderError`
  *immediately*, turning a latent probabilistic deadlock into a
  deterministic test failure.  Re-acquiring a non-reentrant checked lock
  on the holding thread (a guaranteed self-deadlock) raises too.
- **Unguarded shared writes.**  :func:`register_shared_region` declares
  a named shared-memory write region with an optional declared guard
  lock.  Entering the region (``with region:``) while the sanitizer is
  enabled records a finding when the declared guard is not held, or when
  two threads are inside an *unguarded* region at once.  Regions may be
  registered ``exempt`` — the hogwild embedding tables race by design
  (Niu et al., 2011) and are annotated as such rather than silenced.

Following the :mod:`repro.nn.sanitizer` contract: **off by default**,
the only overhead when disabled is a single integer flag test per
acquire/enter, and enabling it never changes numerics — the wrappers
delegate to the exact same ``threading`` primitives, they only do extra
bookkeeping around them.

Granularity note: the order graph is keyed by lock *name* (a class of
locks, e.g. ``"service._cond"``), not by lock instance.  Two service
instances therefore share graph nodes; this over-approximates (it can
flag an inversion that two distinct instances could never deadlock on)
but keeps the graph small and the contract auditable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LockOrderError

__all__ = [
    "CheckedCondition",
    "CheckedLock",
    "CheckedRLock",
    "ConcurrencyFinding",
    "SharedRegion",
    "checked_condition",
    "checked_lock",
    "checked_rlock",
    "concurrency_findings",
    "held_locks",
    "lock_order_edges",
    "lock_sanitizer",
    "lock_sanitizer_enabled",
    "register_shared_region",
    "reset_concurrency_state",
    "set_lock_sanitizer",
    "shared_write",
]


class _State:
    """Process-wide sanitizer flag; plain int keeps the off-path cheap."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = 0


STATE = _State()

# Guards the order graph, the findings map and region writer counts.
# Never held across a blocking call and never while acquiring a checked
# lock's inner primitive, so it cannot participate in the deadlocks it
# is used to detect.
_REGISTRY_MUTEX = threading.Lock()
_ORDER_EDGES: Dict[str, Set[str]] = {}
_FINDINGS: Dict[Tuple[str, str], "ConcurrencyFinding"] = {}
_REGIONS: Dict[str, "SharedRegion"] = {}
_HELD = threading.local()


def _stack() -> List[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def held_locks() -> Tuple[str, ...]:
    """Names of checked locks held by the calling thread, outermost first."""
    return tuple(getattr(_HELD, "stack", None) or ())


def lock_order_edges() -> Dict[str, Tuple[str, ...]]:
    """Snapshot of the recorded acquisition-order graph (name -> successors)."""
    with _REGISTRY_MUTEX:
        return {name: tuple(sorted(edges)) for name, edges in _ORDER_EDGES.items()}


def _find_path(graph: Dict[str, Set[str]], src: str, dst: str) -> Optional[List[str]]:
    """Return a ``src -> ... -> dst`` path in ``graph``, or ``None``."""
    path = [src]
    seen = {src}

    def dfs(node: str) -> bool:
        if node == dst:
            return True
        for nxt in sorted(graph.get(node, ())):
            if nxt in seen:
                continue
            seen.add(nxt)
            path.append(nxt)
            if dfs(nxt):
                return True
            path.pop()
        return False

    return path if dfs(src) else None


def _check_acquire(name: str, reentrant: bool) -> None:
    stack = _stack()
    if name in stack:
        if reentrant:
            return
        raise LockOrderError(
            f"self-deadlock: non-reentrant lock '{name}' acquired while "
            f"already held by this thread (held: {' -> '.join(stack)})"
        )
    with _REGISTRY_MUTEX:
        for held in stack:
            edges = _ORDER_EDGES.setdefault(held, set())
            if name in edges:
                continue
            path = _find_path(_ORDER_EDGES, name, held)
            if path is not None:
                cycle = " -> ".join(path + [name])
                raise LockOrderError(
                    f"lock-order inversion: acquiring '{name}' while "
                    f"holding '{held}' completes the cycle {cycle}; some "
                    "thread takes these locks in the opposite order"
                )
            edges.add(name)


def _note_acquired(name: str) -> None:
    _stack().append(name)


def _note_released(name: str) -> None:
    stack = getattr(_HELD, "stack", None)
    if not stack:
        return
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == name:
            del stack[i]
            return


class CheckedLock:
    """``threading.Lock`` wrapper feeding the lock-order sanitizer.

    Drop-in for the ``acquire``/``release``/context-manager surface.  The
    order check runs *before* the inner acquire so a detected inversion
    raises instead of deadlocking.
    """

    _reentrant = False

    def __init__(self, name: str, inner=None) -> None:
        self.name = name
        self._inner = threading.Lock() if inner is None else inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if STATE.enabled:
            _check_acquire(self.name, self._reentrant)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and STATE.enabled:
            _note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        # Pop unconditionally (cheap when the stack is empty) so a lock
        # acquired while the sanitizer was on is still popped if the
        # sanitizer is switched off mid-hold.
        _note_released(self.name)

    def __enter__(self) -> "CheckedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class CheckedRLock(CheckedLock):
    """``threading.RLock`` wrapper; reentrant acquires skip order edges."""

    _reentrant = True

    def __init__(self, name: str, inner=None) -> None:
        super().__init__(name, threading.RLock() if inner is None else inner)


class CheckedCondition:
    """``threading.Condition`` wrapper aware of ``wait``'s lock handoff.

    ``wait()`` releases the underlying lock while sleeping, so the
    wrapper pops the lock from the held stack before waiting and pushes
    it back once ``wait`` returns (no order check needed: by contract a
    waiter holds only the condition's own lock).
    """

    def __init__(self, name: str, lock=None) -> None:
        self.name = name
        self._cond = threading.Condition(lock)

    def acquire(self, *args) -> bool:
        if STATE.enabled:
            _check_acquire(self.name, True)
        acquired = self._cond.acquire(*args)
        if acquired and STATE.enabled:
            _note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._cond.release()
        _note_released(self.name)

    def __enter__(self) -> "CheckedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def wait(self, timeout: Optional[float] = None) -> bool:
        enabled = STATE.enabled
        if enabled:
            _note_released(self.name)
        try:
            return self._cond.wait(timeout)
        finally:
            if enabled:
                _note_acquired(self.name)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        enabled = STATE.enabled
        if enabled:
            _note_released(self.name)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            if enabled:
                _note_acquired(self.name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckedCondition({self.name!r})"


def checked_lock(name: str) -> CheckedLock:
    """A non-reentrant checked lock named ``name`` in the order graph."""
    return CheckedLock(name)


def checked_rlock(name: str) -> CheckedRLock:
    """A reentrant checked lock named ``name`` in the order graph."""
    return CheckedRLock(name)


def checked_condition(name: str, lock=None) -> CheckedCondition:
    """A checked condition variable named ``name`` in the order graph."""
    return CheckedCondition(name, lock)


def set_lock_sanitizer(enabled: bool = True) -> bool:
    """Toggle the sanitizer; returns the previous setting."""
    previous = bool(STATE.enabled)
    STATE.enabled = 1 if enabled else 0
    return previous


def lock_sanitizer_enabled() -> bool:
    """Whether the lock-discipline sanitizer is currently on."""
    return bool(STATE.enabled)


@contextmanager
def lock_sanitizer():
    """Enable the sanitizer for the scope of the ``with`` block."""
    previous = set_lock_sanitizer(True)
    try:
        yield
    finally:
        set_lock_sanitizer(previous)


@dataclass
class ConcurrencyFinding:
    """One deduplicated write-tracker finding.

    ``kind`` is ``"unguarded-write"`` (a region with a declared guard was
    entered without holding it), ``"concurrent-write"`` (two threads were
    inside an unguarded region at once) or ``"unregistered-region"``
    (``shared_write`` was used on a name never registered).
    """

    kind: str
    region: str
    detail: str
    count: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "region": self.region,
            "detail": self.detail,
            "count": self.count,
        }


def _record_finding(kind: str, region: str, detail: str) -> None:
    key = (kind, region)
    with _REGISTRY_MUTEX:
        existing = _FINDINGS.get(key)
        if existing is None:
            _FINDINGS[key] = ConcurrencyFinding(kind, region, detail)
        else:
            existing.count += 1


def concurrency_findings() -> List[ConcurrencyFinding]:
    """Snapshot of write-tracker findings recorded since the last reset."""
    with _REGISTRY_MUTEX:
        return [
            ConcurrencyFinding(f.kind, f.region, f.detail, f.count)
            for f in _FINDINGS.values()
        ]


class SharedRegion:
    """A declared shared-memory write region used as a context manager.

    ``with region:`` brackets every write to the shared state the region
    names.  While the sanitizer is enabled the region checks its declared
    guard against :func:`held_locks` and counts concurrent writers;
    violations are *recorded* (see :func:`concurrency_findings`), not
    raised, so a storm test can finish and report every distinct finding.
    """

    __slots__ = ("name", "guard", "exempt", "reason", "_writers")

    def __init__(
        self,
        name: str,
        guard: Optional[str] = None,
        exempt: bool = False,
        reason: str = "",
    ) -> None:
        self.name = name
        self.guard = guard
        self.exempt = exempt
        self.reason = reason
        self._writers: Dict[int, int] = {}

    def __enter__(self) -> "SharedRegion":
        if not STATE.enabled or self.exempt:
            return self
        if self.guard is not None and self.guard not in held_locks():
            _record_finding(
                "unguarded-write",
                self.name,
                f"write without holding declared guard '{self.guard}'",
            )
        ident = threading.get_ident()
        concurrent = 0
        with _REGISTRY_MUTEX:
            self._writers[ident] = self._writers.get(ident, 0) + 1
            if self.guard is None:
                concurrent = len(self._writers)
        if concurrent > 1:
            _record_finding(
                "concurrent-write",
                self.name,
                f"{concurrent} unguarded writers active at once",
            )
        return self

    def __exit__(self, *exc) -> bool:
        if self.exempt:
            return False
        ident = threading.get_ident()
        with _REGISTRY_MUTEX:
            depth = self._writers.get(ident, 0) - 1
            if depth > 0:
                self._writers[ident] = depth
            else:
                self._writers.pop(ident, None)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "exempt" if self.exempt else f"guard={self.guard!r}"
        return f"SharedRegion({self.name!r}, {flags})"


def register_shared_region(
    name: str,
    *,
    guard: Optional[str] = None,
    exempt: bool = False,
    reason: str = "",
) -> SharedRegion:
    """Declare (or re-declare) the shared write region ``name``.

    Registration is idempotent: re-registering with the same contract
    returns the existing region so forked trainers and repeated service
    construction share one writer table per process.
    """
    with _REGISTRY_MUTEX:
        region = _REGIONS.get(name)
        if region is None or (region.guard, region.exempt) != (guard, exempt):
            region = SharedRegion(name, guard=guard, exempt=exempt, reason=reason)
            _REGIONS[name] = region
        return region


def shared_write(name: str) -> SharedRegion:
    """Look up a registered region; undeclared names become findings."""
    region = _REGIONS.get(name)
    if region is not None:
        return region
    if STATE.enabled:
        _record_finding(
            "unregistered-region",
            name,
            "write to an undeclared shared region; call "
            "register_shared_region() at setup time",
        )
    return register_shared_region(name)


def reset_concurrency_state() -> None:
    """Clear the order graph, findings and writer counts.

    Registered regions keep their contracts.  Call with no checked locks
    held (per-thread held stacks are intentionally left alone).
    """
    with _REGISTRY_MUTEX:
        _ORDER_EDGES.clear()
        _FINDINGS.clear()
        for region in _REGIONS.values():
            region._writers.clear()
