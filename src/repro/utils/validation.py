"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ReproError


def check_positive(name: str, value: numbers.Real, strict: bool = True) -> None:
    """Raise :class:`ReproError` unless ``value`` is (strictly) positive."""
    if strict and value <= 0:
        raise ReproError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ReproError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value: numbers.Real) -> None:
    """Raise :class:`ReproError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= float(value) <= 1.0:
        raise ReproError(f"{name} must lie in [0, 1], got {value!r}")


def check_probability_vector(name: str, probs: np.ndarray, atol: float = 1e-6) -> None:
    """Raise :class:`ReproError` unless ``probs`` is a probability vector."""
    probs = np.asarray(probs, dtype=float)
    if probs.ndim != 1:
        raise ReproError(f"{name} must be 1-dimensional, got shape {probs.shape}")
    if np.any(probs < -atol):
        raise ReproError(f"{name} contains negative entries")
    total = float(probs.sum())
    if abs(total - 1.0) > atol:
        raise ReproError(f"{name} must sum to 1, sums to {total}")
