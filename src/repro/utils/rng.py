"""Random-number-generator plumbing.

All stochastic components in the library accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalise it through
:func:`as_rng`.  This keeps every experiment reproducible end-to-end: a
single seed at the top level deterministically derives the seeds of each
subcomponent via :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets callers
    thread one generator through a pipeline of components.  A sequence of
    ints is forwarded as a numpy entropy key, so call sites can derive
    independent streams from ``(seed, index)`` pairs without ad-hoc seed
    arithmetic.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child's stream is a deterministic function of the parent's state, so
    components seeded via ``spawn_rng`` stay reproducible while not sharing
    (and hence not perturbing) the parent's stream.

    The child is seeded from a single 63-bit draw, which is fine for the
    handful of sequential spawns the trainer makes but collision-prone when
    fanning out a large worker pool (birthday bound ~2^31.5 spawns; far
    worse, two children spawned from *equal* draws share a stream exactly).
    Worker pools must use :func:`spawn_rngs`, which derives children through
    ``numpy.random.SeedSequence`` spawn keys that are distinct by
    construction.  Kept bit-compatible: existing components seeded through
    this function reproduce their historical streams.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators for a worker pool.

    One 128-bit entropy draw from ``rng`` seeds a
    :class:`numpy.random.SeedSequence`, whose ``spawn`` assigns each child a
    distinct spawn key — children can never collide with each other, no
    matter how many are spawned, unlike repeated :func:`spawn_rng` calls
    whose single-integer seeds can.  Deterministic: the same parent state
    always yields the same n streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    entropy = [int(word) for word in rng.integers(0, 2**63 - 1, size=4)]
    children = np.random.SeedSequence(entropy).spawn(n)
    return [np.random.default_rng(child) for child in children]
