"""Random-number-generator plumbing.

All stochastic components in the library accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalise it through
:func:`as_rng`.  This keeps every experiment reproducible end-to-end: a
single seed at the top level deterministically derives the seeds of each
subcomponent via :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets callers
    thread one generator through a pipeline of components.  A sequence of
    ints is forwarded as a numpy entropy key, so call sites can derive
    independent streams from ``(seed, index)`` pairs without ad-hoc seed
    arithmetic.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child's stream is a deterministic function of the parent's state, so
    components seeded via ``spawn_rng`` stay reproducible while not sharing
    (and hence not perturbing) the parent's stream.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
