"""Small shared utilities: RNG handling, validation, text formatting and
the runtime lock-discipline sanitizer (:mod:`repro.utils.concurrency`)."""

from repro.utils.concurrency import (
    CheckedCondition,
    CheckedLock,
    CheckedRLock,
    ConcurrencyFinding,
    SharedRegion,
    checked_condition,
    checked_lock,
    checked_rlock,
    concurrency_findings,
    held_locks,
    lock_order_edges,
    lock_sanitizer,
    lock_sanitizer_enabled,
    register_shared_region,
    reset_concurrency_state,
    set_lock_sanitizer,
    shared_write,
)
from repro.utils.rng import as_rng, spawn_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)
from repro.utils.tables import format_table

__all__ = [
    "as_rng",
    "spawn_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "format_table",
    "CheckedCondition",
    "CheckedLock",
    "CheckedRLock",
    "ConcurrencyFinding",
    "SharedRegion",
    "checked_condition",
    "checked_lock",
    "checked_rlock",
    "concurrency_findings",
    "held_locks",
    "lock_order_edges",
    "lock_sanitizer",
    "lock_sanitizer_enabled",
    "register_shared_region",
    "reset_concurrency_state",
    "set_lock_sanitizer",
    "shared_write",
]
