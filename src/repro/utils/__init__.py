"""Small shared utilities: RNG handling, validation and text formatting."""

from repro.utils.rng import as_rng, spawn_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)
from repro.utils.tables import format_table

__all__ = [
    "as_rng",
    "spawn_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "format_table",
]
