"""Differential oracles: every fast path against an independent slow truth.

Three oracle families, each reporting a max-abs-diff per component:

- **sampling**: the vectorised frontier walkers against their scalar
  ``_reference_*`` paths (draw-for-draw identical for uniform, metapath and
  exploration walks), the node2vec transition distribution against a
  from-scratch p/q reimplementation, alias tables and the negative sampler
  against their exact target distributions, and Eq. 1's relationship
  transition probabilities against a loop transcription;
- **metrics**: every function of :mod:`repro.eval.metrics` against a
  brute-force O(n^2) / pure-Python reimplementation (pairwise Mann-Whitney
  ROC-AUC, threshold-sweep PR-AUC and F1, positional loops for the ranking
  metrics);
- **model**: losses, attention and normalisation layers against plain numpy
  transcriptions of the paper's Eqs. 3, 6-10 and 13;
- **serving**: the batched top-K engine (mask pools, one-fetch tables,
  single-matmul scoring, argpartition extraction) against the scalar
  ``_reference_*`` recommendation paths — top-K lists must match node for
  node *in order* (exact ties included), scores to float roundoff.

Every oracle is *exact*: both sides compute the same mathematical object,
so the acceptance tolerance is float-roundoff scale (1e-6), not a loose
statistical bound.  A drifting refactor therefore fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import as_rng, spawn_rng

__all__ = [
    "OracleResult",
    "DEFAULT_TOLERANCE",
    "RECALL_TOLERANCE",
    "sampling_oracles",
    "metric_oracles",
    "model_oracles",
    "serving_oracles",
    "index_oracles",
    "service_oracles",
    "run_oracle_suite",
    "format_oracle_table",
]

DEFAULT_TOLERANCE = 1e-6

# Approximate retrieval gate: an ANN backend passes its recall oracle when
# recall@10 vs the exact oracle exceeds 1 - RECALL_TOLERANCE (0.95).  The
# oracle reports max_abs_diff = 1 - recall so the standard
# ``max_abs_diff < tolerance`` acceptance applies unchanged.
RECALL_TOLERANCE = 0.05


@dataclass
class OracleResult:
    """Outcome of one differential oracle."""

    name: str
    component: str
    max_abs_diff: float
    tolerance: float = DEFAULT_TOLERANCE
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.max_abs_diff < self.tolerance

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "component": self.component,
            "max_abs_diff": self.max_abs_diff,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "detail": self.detail,
        }


def _result(name: str, component: str, diff: float, detail: str = "",
            tolerance: float = DEFAULT_TOLERANCE) -> OracleResult:
    return OracleResult(
        name=name, component=component, max_abs_diff=float(diff),
        tolerance=tolerance, detail=detail,
    )


def _array_diff(a: np.ndarray, b: np.ndarray) -> float:
    a, b = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def _walks_diff(fast: Sequence[Sequence[int]], ref: Sequence[Sequence[int]]) -> float:
    """0 when the walk corpora are identical, inf otherwise."""
    if len(fast) != len(ref):
        return float("inf")
    for f, r in zip(fast, ref):
        if list(f) != list(r):
            return float("inf")
    return 0.0


def _default_graph(seed: int):
    from repro.datasets.zoo import load_dataset

    return load_dataset("taobao", scale=0.1, seed=seed)


# ======================================================================
# Sampling oracles
# ======================================================================
def sampling_oracles(dataset=None, seed: int = 0) -> List[OracleResult]:
    """Vectorised sampling pipeline vs scalar references on a real graph."""
    from repro.sampling.alias import AliasTable
    from repro.sampling.context import _reference_context_pairs, context_pairs
    from repro.sampling.exploration import RandomizedExploration
    from repro.sampling.metapath_walk import MetapathWalker
    from repro.sampling.negative import UnigramNegativeSampler
    from repro.sampling.node2vec_walk import Node2VecWalker
    from repro.sampling.random_walk import UniformRandomWalker

    if dataset is None:
        dataset = _default_graph(seed)
    graph = dataset.graph
    rng = as_rng(seed)
    results: List[OracleResult] = []
    starts = rng.choice(graph.num_nodes, size=12, replace=False)

    # --- uniform walker: fast frontier path draw-identical to the scalar loop
    fast = UniformRandomWalker(graph, rng=seed)
    ref = UniformRandomWalker(graph, rng=seed)
    diff = _walks_diff(
        [fast.walk(int(s), 10) for s in starts],
        [ref._reference_walk(int(s), 10) for s in starts],
    )
    results.append(_result(
        "uniform_walk_equivalence", "sampling", diff,
        "frontier walk vs scalar _reference_walk, same seed",
    ))

    # --- metapath walker: typed steps draw-identical to the scalar loop
    relation = graph.schema.relationships[0]
    scheme = dataset.schemes_for(relation)[0]
    typed_starts = graph.nodes_of_type(scheme.start_type)[:12]
    fast = MetapathWalker(graph, scheme, rng=seed)
    ref = MetapathWalker(graph, scheme, rng=seed)
    diff = _walks_diff(
        [fast.walk(int(s), 9) for s in typed_starts],
        [ref._reference_walk(int(s), 9) for s in typed_starts],
    )
    results.append(_result(
        "metapath_walk_equivalence", "sampling", diff,
        f"scheme {scheme.describe()} frontier vs scalar walk",
    ))

    # --- randomized exploration: two-phase steps draw-identical (Eqs. 1-2)
    fast = RandomizedExploration(graph, rng=seed)
    ref = RandomizedExploration(graph, rng=seed)
    fast_walks = [fast.walk(int(s), 8) for s in starts]
    ref_walks = [ref._reference_walk(int(s), 8) for s in starts]
    diff = max(
        _walks_diff([w for w, _ in fast_walks], [w for w, _ in ref_walks]),
        _walks_diff([r for _, r in fast_walks], [r for _, r in ref_walks]),
    )
    results.append(_result(
        "exploration_walk_equivalence", "sampling", diff,
        "inter-relationship walks and relation traces, same seed",
    ))

    # --- Eq. 1 transition probabilities vs a loop transcription
    explorer = RandomizedExploration(graph, rng=seed)
    relations = graph.schema.relationships
    diff = 0.0
    expected = np.zeros(len(relations))  # reused (re-zeroed) per node
    for node in starts:
        expected.fill(0.0)
        active = [
            i for i, rel in enumerate(relations)
            if graph.degrees(rel)[int(node)] > 0
        ]
        for i in active:
            expected[i] = 1.0 / len(active)
        diff = max(diff, _array_diff(
            explorer.transition_probabilities(int(node)), expected
        ))
    results.append(_result(
        "exploration_transition_probs", "sampling", diff,
        "Eq. 1 p(r|v) vs per-relationship degree loop",
    ))

    # --- node2vec: exact second-order transition distribution (p/q weights)
    walker = Node2VecWalker(graph, p=4.0, q=0.25, rng=seed)
    diff = 0.0
    checked = 0
    for prev in starts:
        prev = int(prev)
        currents = walker._neighbors(prev)
        if len(currents) == 0:
            continue
        current = int(currents[0])
        candidates = walker._neighbors(current)
        if len(candidates) == 0:
            continue
        weights = walker._edge_weights(prev, candidates)
        prev_neighbors = set(walker._neighbors(prev).tolist())
        expected = np.empty(len(candidates))
        for i, cand in enumerate(candidates.tolist()):
            if cand == prev:
                expected[i] = 1.0 / walker.p
            elif cand in prev_neighbors:
                expected[i] = 1.0
            else:
                expected[i] = 1.0 / walker.q
        diff = max(diff, _array_diff(
            weights / weights.sum(), expected / expected.sum()
        ))
        checked += 1
    results.append(_result(
        "node2vec_transition_distribution", "sampling", diff,
        f"normalised p/q weights vs brute-force membership ({checked} edges)",
    ))

    # --- alias table: implied distribution vs normalised weights
    weights = rng.random(64)
    weights[rng.choice(64, size=8, replace=False)] = 0.0
    diff = _array_diff(AliasTable(weights).probabilities(), weights / weights.sum())
    results.append(_result(
        "alias_table_distribution", "sampling", diff,
        "AliasTable.probabilities vs normalised input weights",
    ))

    # --- negative sampler: per-type tables target degree^0.75 exactly
    sampler = UnigramNegativeSampler(graph, rng=spawn_rng(rng))
    degrees = graph.degrees().astype(np.float64)
    target_weights = np.power(np.maximum(degrees, 1e-12), sampler.power)
    diff = _array_diff(
        sampler._global_table.probabilities(),
        target_weights / target_weights.sum(),
    )
    for node_type, table in sampler._type_tables.items():
        nodes = sampler._type_nodes[node_type]
        w = target_weights[nodes]
        diff = max(diff, _array_diff(table.probabilities(), w / w.sum()))
    results.append(_result(
        "negative_sampler_distribution", "sampling", diff,
        "global + per-type alias tables vs degree^0.75 (Eq. 13 P_Neg)",
    ))

    # --- context pairs: window gather vs the historical nested loop
    walker = UniformRandomWalker(graph, rng=spawn_rng(rng))
    walks = walker.walks(2, 8, nodes=starts)
    diff = _array_diff(
        context_pairs(walks, window=3), _reference_context_pairs(walks, window=3)
    )
    results.append(_result(
        "context_pairs_equivalence", "sampling", diff,
        "vectorised window gather vs nested-loop extraction (bit-identical order)",
    ))

    return results


# ======================================================================
# Metric oracles (brute-force O(n^2) reimplementations)
# ======================================================================
def _brute_roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """P(score_pos > score_neg) + 0.5 P(tie), one pair at a time."""
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = 0.0
    for p in pos.tolist():
        for n in neg.tolist():
            if p > n:
                wins += 1.0
            elif p == n:
                wins += 0.5
    return wins / (len(pos) * len(neg))


def _brute_confusion_sweep(labels: np.ndarray, scores: np.ndarray):
    """(precision, recall) per distinct threshold, descending, by counting."""
    n_pos = int(labels.sum())
    points = []
    for threshold in sorted(set(scores.tolist()), reverse=True):
        tp = fp = 0
        for label, score in zip(labels.tolist(), scores.tolist()):
            if score >= threshold:
                if label == 1:
                    tp += 1
                else:
                    fp += 1
        points.append((tp / (tp + fp), tp / n_pos))
    return points


def _brute_pr_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    auc, prev_recall = 0.0, 0.0
    for precision, recall in _brute_confusion_sweep(labels, scores):
        auc += (recall - prev_recall) * precision
        prev_recall = recall
    return auc


def _brute_best_f1(labels: np.ndarray, scores: np.ndarray) -> float:
    best = 0.0
    for precision, recall in _brute_confusion_sweep(labels, scores):
        if precision + recall > 0:
            best = max(best, 2 * precision * recall / (precision + recall))
    return best


def _brute_ndcg(hits: Sequence[bool], num_relevant: int, k: int) -> float:
    dcg = 0.0
    for i, hit in enumerate(list(hits)[:k]):
        if hit:
            dcg += 1.0 / np.log2(i + 2.0)
    n_hits = sum(bool(h) for h in list(hits)[:k])
    ideal_count = min(max(num_relevant, n_hits), k)
    ideal = sum(1.0 / np.log2(i + 2.0) for i in range(ideal_count))
    return dcg / ideal


def _binary_case(rng: np.random.Generator, n: int):
    """Labels/scores with heavy score ties to exercise tie handling."""
    labels = rng.integers(0, 2, size=n)
    labels[0], labels[1] = 0, 1  # both classes present
    scores = np.round(rng.random(n), 2)
    return labels, scores


def metric_oracles(seed: int = 0, draws: int = 5) -> List[OracleResult]:
    """eval.metrics vs brute-force reimplementations on random instances."""
    from repro.eval import metrics

    rng = as_rng(seed)
    results: List[OracleResult] = []

    diffs = {"roc_auc": 0.0, "pr_auc": 0.0, "best_f1": 0.0, "f1_at_threshold": 0.0}
    for _ in range(draws):
        labels, scores = _binary_case(rng, 120)
        diffs["roc_auc"] = max(
            diffs["roc_auc"],
            abs(metrics.roc_auc(labels, scores) - _brute_roc_auc(labels, scores)),
        )
        diffs["pr_auc"] = max(
            diffs["pr_auc"],
            abs(metrics.pr_auc(labels, scores) - _brute_pr_auc(labels, scores)),
        )
        diffs["best_f1"] = max(
            diffs["best_f1"],
            abs(metrics.best_f1(labels, scores) - _brute_best_f1(labels, scores)),
        )
        threshold = 0.5
        tp = int(((scores >= threshold) & (labels == 1)).sum())
        fp = int(((scores >= threshold) & (labels == 0)).sum())
        fn = int(((scores < threshold) & (labels == 1)).sum())
        expected = (
            0.0 if tp == 0
            else 2 * (tp / (tp + fp)) * (tp / (tp + fn))
            / ((tp / (tp + fp)) + (tp / (tp + fn)))
        )
        diffs["f1_at_threshold"] = max(
            diffs["f1_at_threshold"],
            abs(metrics.f1_at_threshold(labels, scores, threshold) - expected),
        )
    details = {
        "roc_auc": "rank formulation vs pairwise Mann-Whitney sweep",
        "pr_auc": "grouped-threshold average precision vs per-threshold counting",
        "best_f1": "vectorised threshold max vs per-threshold counting",
        "f1_at_threshold": "hard-classification F1 vs confusion-count arithmetic",
    }
    for name, diff in diffs.items():
        results.append(_result(name, "metrics", diff, details[name]))

    rank_diffs = {
        "precision_at_k": 0.0, "recall_at_k": 0.0, "ndcg_at_k": 0.0,
        "reciprocal_rank": 0.0, "average_precision_at_k": 0.0,
    }
    for _ in range(draws * 4):
        hits = (rng.random(12) < 0.4).tolist()
        k = int(rng.integers(1, 13))
        num_relevant = max(1, sum(hits) + int(rng.integers(0, 3)))
        topk = hits[:k]
        rank_diffs["precision_at_k"] = max(
            rank_diffs["precision_at_k"],
            abs(metrics.precision_at_k(hits, k) - sum(topk) / k),
        )
        rank_diffs["recall_at_k"] = max(
            rank_diffs["recall_at_k"],
            abs(metrics.recall_at_k(hits, num_relevant, k) - sum(topk) / num_relevant),
        )
        rank_diffs["ndcg_at_k"] = max(
            rank_diffs["ndcg_at_k"],
            abs(metrics.ndcg_at_k(hits, num_relevant, k)
                - _brute_ndcg(hits, num_relevant, k)),
        )
        first = next((i for i, h in enumerate(hits) if h), None)
        expected_rr = 0.0 if first is None else 1.0 / (first + 1)
        rank_diffs["reciprocal_rank"] = max(
            rank_diffs["reciprocal_rank"],
            abs(metrics.reciprocal_rank(hits) - expected_rr),
        )
        running, hit_count = 0.0, 0
        for i, hit in enumerate(topk):
            if hit:
                hit_count += 1
                running += hit_count / (i + 1)
        denominator = min(max(num_relevant, hit_count), k)
        rank_diffs["average_precision_at_k"] = max(
            rank_diffs["average_precision_at_k"],
            abs(metrics.average_precision_at_k(hits, num_relevant, k)
                - running / denominator),
        )
    for name, diff in rank_diffs.items():
        results.append(_result(name, "metrics", diff, "positional-loop reimplementation"))
    return results


# ======================================================================
# Model oracles (numpy transcriptions of Eqs. 3, 6-10, 13)
# ======================================================================
def _np_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _np_attention(h: np.ndarray, attn) -> np.ndarray:
    """Eq. 6/9: softmax(H Wq (H Wk)^T / sqrt(d)) H Wv, in plain numpy."""
    q = h @ attn.query.weight.data
    k = h @ attn.key.weight.data
    v = h @ attn.value.weight.data
    scores = q @ np.swapaxes(k, -2, -1) / np.sqrt(attn.attn_dim)
    return _np_softmax(scores, axis=-1) @ v


def model_oracles(seed: int = 0) -> List[OracleResult]:
    """Losses, attention and layers vs straightforward numpy transcriptions."""
    from scipy import special

    from repro.core.hierarchical_attention import (
        MetapathLevelAttention,
        RelationshipLevelAttention,
    )
    from repro.core.loss import skip_gram_loss, softplus
    from repro.nn.aggregators import MeanAggregator
    from repro.nn.attention import SelfAttention
    from repro.nn.layers import Embedding, LayerNorm, Linear
    from repro.nn.tensor import Tensor

    rng = as_rng(seed)
    results: List[OracleResult] = []

    # --- elementwise nonlinearities vs scipy
    x = rng.standard_normal((6, 7)) * 4.0
    results.append(_result(
        "tensor_sigmoid", "model",
        _array_diff(Tensor(x).sigmoid().data, special.expit(x)),
        "Tensor.sigmoid vs scipy.special.expit",
    ))
    results.append(_result(
        "tensor_softmax", "model",
        _array_diff(Tensor(x).softmax(axis=-1).data, special.softmax(x, axis=-1)),
        "Tensor.softmax vs scipy.special.softmax",
    ))
    results.append(_result(
        "tensor_log_softmax", "model",
        _array_diff(
            Tensor(x).log_softmax(axis=-1).data, special.log_softmax(x, axis=-1)
        ),
        "Tensor.log_softmax vs scipy.special.log_softmax",
    ))

    # --- softplus vs logaddexp (the two stable phrasings agree exactly)
    big = rng.standard_normal((5, 8)) * 20.0
    results.append(_result(
        "softplus_stability", "model",
        _array_diff(softplus(Tensor(big)).data, np.logaddexp(0.0, big)),
        "relu + log1p-exp phrasing vs np.logaddexp(0, x)",
    ))

    # --- Eq. 13 skip-gram loss vs numpy transcription
    table = Embedding(10, 6, rng=spawn_rng(rng))
    targets = rng.standard_normal((4, 6))
    contexts = rng.integers(0, 10, size=4)
    negatives = rng.integers(0, 10, size=(4, 3))
    loss = skip_gram_loss(
        Tensor(targets), table, contexts, negatives
    ).item()
    weights = table.weight.data
    pos_logits = (targets * weights[contexts]).sum(axis=-1)
    neg_logits = np.einsum("bnd,bd->bn", weights[negatives], targets)
    expected = (
        np.logaddexp(0.0, -pos_logits).mean()
        + np.logaddexp(0.0, neg_logits).sum(axis=-1).mean()
    )
    results.append(_result(
        "skip_gram_loss", "model", abs(loss - expected),
        "Eq. 13 loss vs numpy logaddexp transcription",
    ))

    # --- Eq. 6/9 self-attention vs numpy
    attn = SelfAttention(5, 4, rng=spawn_rng(rng))
    h = rng.standard_normal((3, 6, 5))
    results.append(_result(
        "self_attention", "model",
        _array_diff(attn(Tensor(h)).data, _np_attention(h, attn)),
        "scaled dot-product attention vs numpy einsum transcription",
    ))

    # --- Eq. 6-7 metapath-level attention (residual + mean pool)
    mp_attn = MetapathLevelAttention(4, rng=spawn_rng(rng))
    flows = [rng.standard_normal((3, 4)) for _ in range(3)]
    out = mp_attn([Tensor(f) for f in flows]).data
    stacked = np.stack(flows, axis=1)
    expected = (stacked + _np_attention(stacked, mp_attn.attention)).mean(axis=1)
    results.append(_result(
        "metapath_level_attention", "model", _array_diff(out, expected),
        "Eq. 6-7: residual attention + mean over flows",
    ))

    # --- Eq. 8-9 relationship-level attention (residual, no pooling)
    rel_attn = RelationshipLevelAttention(4, rng=spawn_rng(rng))
    relations = [rng.standard_normal((3, 4)) for _ in range(2)]
    out = rel_attn([Tensor(r) for r in relations]).data
    stacked = np.stack(relations, axis=1)
    expected = stacked + _np_attention(stacked, rel_attn.attention)
    results.append(_result(
        "relationship_level_attention", "model", _array_diff(out, expected),
        "Eq. 8-9: residual attention over relationship embeddings",
    ))

    # --- Eq. 3 mean aggregator vs numpy
    agg = MeanAggregator(4, 3, rng=spawn_rng(rng))
    self_feats = rng.standard_normal((5, 4))
    neigh_feats = rng.standard_normal((5, 3, 4))
    out = agg(Tensor(self_feats), Tensor(neigh_feats)).data
    merged = np.concatenate([self_feats, neigh_feats.mean(axis=1)], axis=-1)
    expected = np.maximum(
        merged @ agg.combine.weight.data + agg.combine.bias.data, 0.0
    )
    results.append(_result(
        "mean_aggregator", "model", _array_diff(out, expected),
        "Eq. 3: relu([self; mean(neigh)] W + b) vs numpy",
    ))

    # --- LayerNorm vs numpy
    norm = LayerNorm(6)
    norm.gamma.data = rng.standard_normal(6)
    norm.beta.data = rng.standard_normal(6)
    x = rng.standard_normal((4, 6))
    mean = x.mean(axis=-1, keepdims=True)
    var = ((x - mean) ** 2).mean(axis=-1, keepdims=True)
    expected = (x - mean) / np.sqrt(var + norm.eps) * norm.gamma.data + norm.beta.data
    results.append(_result(
        "layer_norm", "model", _array_diff(norm(Tensor(x)).data, expected),
        "layer normalisation vs numpy moments",
    ))

    # --- Eq. 10's affine output transform (Linear) vs numpy
    linear = Linear(4, 3, rng=spawn_rng(rng))
    x = rng.standard_normal((7, 4))
    expected = x @ linear.weight.data + linear.bias.data
    results.append(_result(
        "linear_affine", "model", _array_diff(linear(Tensor(x)).data, expected),
        "y = x W + b vs numpy matmul",
    ))

    return results


# ======================================================================
# Serving oracles (batched engine vs scalar reference recommendation paths)
# ======================================================================
def _recommendation_lists_diff(fast, ref) -> float:
    """0 when node lists match in order, inf otherwise (scores separately)."""
    if len(fast) != len(ref):
        return float("inf")
    for f, r in zip(fast, ref):
        if [rec.node for rec in f] != [rec.node for rec in r]:
            return float("inf")
    return 0.0


def _recommendation_scores_diff(fast, ref) -> float:
    diff = 0.0
    for f, r in zip(fast, ref):
        if len(f) != len(r):
            return float("inf")
        for a, b in zip(f, r):
            diff = max(diff, abs(a.score - b.score))
    return diff


def serving_oracles(dataset=None, seed: int = 0) -> List[OracleResult]:
    """Batch serving engine vs the scalar ``_reference_*`` paths.

    Runs over a random embedding store with *planted duplicate rows* so
    exact score ties exercise the stable tie-break, and over a source set
    that includes cold-start nodes (no neighbors under the queried
    relationship) when the graph has any.
    """
    from repro.core.persistence import EmbeddingStore
    from repro.core.recommender import Recommender
    from repro.eval.ranking import _reference_ranked_candidates

    if dataset is None:
        dataset = _default_graph(seed)
    graph = dataset.graph
    rng = as_rng(seed)
    relation = graph.schema.relationships[0]

    tables = {
        rel: rng.standard_normal((graph.num_nodes, 12))
        for rel in graph.schema.relationships
    }
    # Plant exact ties: duplicated embedding rows score identically, so the
    # stable (ascending-node-id) tie-break is actually exercised.
    for table in tables.values():
        clones = rng.choice(graph.num_nodes, size=min(8, graph.num_nodes), replace=False)
        table[clones[1::2]] = table[clones[0::2]][: len(clones[1::2])]
    store = EmbeddingStore(tables)
    recommender = Recommender(store, graph)

    degrees = graph.degrees(relation)
    warm = np.flatnonzero(degrees > 0)[:10]
    cold = np.flatnonzero(degrees == 0)[:3]
    sources = np.concatenate([warm, cold]).astype(np.int64)
    results: List[OracleResult] = []

    # --- batched top-K vs the per-source reference loop (ties included)
    fast = recommender.recommend_batch(sources, relation, k=10)
    ref = recommender._reference_recommend_batch(sources, relation, k=10)
    diff = max(
        _recommendation_lists_diff(fast, ref),
        _recommendation_scores_diff(fast, ref),
    )
    results.append(_result(
        "recommend_batch_equivalence", "serving", diff,
        f"engine matmul+argpartition vs scalar loop ({len(sources)} sources, "
        f"{len(cold)} cold)",
    ))

    # --- scalar recommend stays bit-identical through the engine
    diff = 0.0
    for source in sources[:6].tolist():
        fast_one = recommender.recommend(source, relation, k=7)
        ref_one = recommender._reference_recommend(source, relation, k=7)
        diff = max(
            diff,
            _recommendation_lists_diff([fast_one], [ref_one]),
            _recommendation_scores_diff([fast_one], [ref_one]),
        )
    results.append(_result(
        "recommend_scalar_equivalence", "serving", diff,
        "single-source engine path vs reference full argsort",
    ))

    # --- cosine similarity with cached norms vs per-node recomputation
    probe = rng.choice(graph.num_nodes, size=6, replace=False)
    fast = [recommender.similar_nodes(int(n), relation, k=8) for n in probe]
    ref = [recommender._reference_similar_nodes(int(n), relation, k=8) for n in probe]
    diff = max(
        _recommendation_lists_diff(fast, ref),
        _recommendation_scores_diff(fast, ref),
    )
    results.append(_result(
        "similar_nodes_equivalence", "serving", diff,
        "cached-norm cosine top-K vs per-node gathered reference",
    ))

    # --- full-ranking path (the evaluator workload): exact order match
    engine = recommender.engine
    diff = 0.0
    eval_sources = warm[:6]
    if len(eval_sources):
        target_type = graph.node_type(
            int(graph.neighbors(int(eval_sources[0]), relation)[0])
        )
        fast_rankings = engine.rank_all(
            eval_sources, relation, target_type=target_type
        )
        for source, ranked in zip(eval_sources.tolist(), fast_rankings):
            expected = _reference_ranked_candidates(
                store, graph, source, relation, target_type
            )
            if ranked.tolist() != expected.tolist():
                diff = float("inf")
    results.append(_result(
        "ranking_order_equivalence", "serving", diff,
        "engine rank_all vs pre-engine per-source ranking loop",
    ))

    return results


# ======================================================================
# Index oracles (ANN backends vs the exact brute-force oracle)
# ======================================================================
def _topk_recall(approx, exact) -> float:
    """Mean |approx ∩ exact| / |exact| over per-source top-K id arrays."""
    recalls = []
    for (approx_ids, _), (exact_ids, _) in zip(approx, exact):
        if len(exact_ids) == 0:
            continue
        overlap = len(set(approx_ids.tolist()) & set(exact_ids.tolist()))
        recalls.append(overlap / len(exact_ids))
    return float(np.mean(recalls)) if recalls else 1.0


def index_oracles(dataset=None, seed: int = 0) -> List[OracleResult]:
    """Vector-index backends vs the exact retrieval oracle.

    Four gates:

    - the ``exact`` backend must be **bit-identical** to the engine's
      brute-force path — same ids in the same order, same score bits;
    - ``ivf`` and ``hnsw`` must reach recall@10 > 0.95 against the exact
      top-10 on the smoke-scale graph (reported as
      ``max_abs_diff = 1 - recall`` with tolerance
      :data:`RECALL_TOLERANCE`) while scoring strictly fewer candidates;
    - every backend must survive a save/load roundtrip with bit-identical
      search results.

    Runs on a larger graph than the other oracle families (ANN pruning is
    meaningless on a 46-node pool) with random embedding tables — the
    structureless worst case for ANN recall.
    """
    from repro.core.persistence import EmbeddingStore
    from repro.serving import BatchServingEngine
    from repro.serving.index import make_index, load_index, save_index

    if dataset is None:
        from repro.datasets.zoo import load_dataset

        dataset = load_dataset("taobao", scale=2.0, seed=seed)
    graph = dataset.graph
    rng = as_rng(seed)
    relation = graph.schema.relationships[0]
    tables = {
        rel: rng.standard_normal((graph.num_nodes, 12))
        for rel in graph.schema.relationships
    }
    store = EmbeddingStore(tables)
    k = 10
    sources = np.flatnonzero(graph.degrees(relation) > 0)[:48]
    results: List[OracleResult] = []

    def engine(backend: str, **params) -> BatchServingEngine:
        return BatchServingEngine(
            store, graph, index=backend,
            index_params={"seed": seed, **params},
        )

    exact_engine = engine("exact")
    exact_topk = exact_engine.topk_batch(sources, relation, k)

    # --- exact backend: routing through ExactIndex.search must reproduce
    # the engine's brute-force output bit for bit.
    table = tables[relation]
    target_type = graph.node_type(
        int(graph.neighbors(int(sources[0]), relation)[0])
    )
    pool, rows, cols = exact_engine.pools.pool_exclusions(
        sources, relation, target_type, True
    )
    exact_index = make_index("exact").build(table[pool])
    found = exact_index.search(
        table[sources], k,
        exclude=BatchServingEngine._exclusion_lists(rows, cols, len(sources)),
    )
    diff = 0.0
    for (positions, scores), (exact_ids, exact_scores) in zip(found, exact_topk):
        if (pool[positions].tolist() != exact_ids.tolist()
                or not np.array_equal(scores, exact_scores)):
            diff = float("inf")
    results.append(_result(
        "exact_index_bit_identity", "index", diff,
        f"ExactIndex.search vs engine brute force ({len(sources)} sources, "
        f"pool {len(pool)})",
    ))

    # --- approximate backends: recall@10 gate + strict sub-scanning
    for backend in ("ivf", "hnsw"):
        approx_engine = engine(backend)
        approx_topk = approx_engine.topk_batch(sources, relation, k)
        recall = _topk_recall(approx_topk, exact_topk)
        scanned = approx_engine.stats.candidates_scored
        full = exact_engine.stats.candidates_scored
        # Sub-linear *scaling* is asserted by the benchmark pool sweep; at
        # smoke scale a probe can legitimately cover the whole tiny pool,
        # so this oracle gates recall only and reports the scan ratio.
        results.append(_result(
            f"{backend}_recall_at_{k}", "index", 1.0 - recall,
            f"recall@{k}={recall:.3f} vs exact, scored {scanned} of "
            f"{full} exact-scanned candidates",
            tolerance=RECALL_TOLERANCE,
        ))

    # --- persistence: save/load must not change a single search result
    import tempfile
    from pathlib import Path

    queries = table[sources[:8]]
    diff = 0.0
    for backend in ("exact", "ivf", "hnsw"):
        index = make_index(backend, seed=seed).build(table[pool])
        with tempfile.TemporaryDirectory() as tmp:
            loaded, _ = load_index(save_index(index, Path(tmp) / backend))
        before = index.search(queries, k)
        after = loaded.search(queries, k)
        for (a_ids, a_scores), (b_ids, b_scores) in zip(before, after):
            if (not np.array_equal(a_ids, b_ids)
                    or not np.array_equal(a_scores, b_scores)):
                diff = float("inf")
    results.append(_result(
        "index_roundtrip_identity", "index", diff,
        "save_index/load_index search results bit-identical, all backends",
    ))
    return results


# ======================================================================
# Service oracles (streaming delta pipeline vs rebuild-per-edge reference)
# ======================================================================
def service_oracles(dataset=None, seed: int = 0) -> List[OracleResult]:
    """Streaming service pipeline vs a naive rebuild-per-edge reference.

    The production path serves reads through
    :class:`~repro.serving.deltas.DeltaGraphView` merged (CSR + delta)
    views with threshold compaction, micro-batching and cached embedding
    tables.  The reference does the dumbest correct thing instead: after
    *every* accepted edge it reconstructs a
    :class:`~repro.graph.multiplex.MultiplexHeteroGraph` from scratch and
    serves each read through a **fresh** engine (no caches to go stale).
    Four gates on one seeded mixed trace:

    - every read's top-K ids and score bits match the reference exactly,
      across at least three compaction cycles;
    - at every compaction boundary the folded base CSR is bit-identical
      (indptr and indices) to a from-scratch build over the full edge
      list, for every relation;
    - a never-seen node streamed in by feedback is servable immediately
      (cold-start, no restart) and matches the reference;
    - replaying the trace twice on fresh services yields the same result
      digest (seeded determinism).
    """
    from repro.core.persistence import EmbeddingStore
    from repro.graph.multiplex import MultiplexHeteroGraph
    from repro.serving import (
        BatchServingEngine,
        RecommendService,
        ServiceConfig,
    )
    from repro.serving.pools import relation_endpoint_types
    from repro.serving.service import ColdStartEmbedder
    from repro.serving.traffic import generate_trace, replay_trace

    if dataset is None:
        dataset = _default_graph(seed)
    base = dataset.graph
    schema = base.schema
    rng = as_rng(seed)
    tables = {
        rel: rng.standard_normal((base.num_nodes, 12))
        for rel in schema.relationships
    }
    store = EmbeddingStore(tables)
    k = 10
    threshold = 24

    trace = generate_trace(
        base, 240, seed=(seed, 1),
        read_fraction=0.55, new_node_rate=0.08, k=k,
    )

    def fresh_service() -> RecommendService:
        return RecommendService(store, base, config=ServiceConfig(
            flush_interval=0.0, compaction_threshold=threshold,
            max_queue=100_000,
        ))

    service = fresh_service()

    # Naive reference state: full edge lists in arrival order + type codes.
    ref_codes = [int(code) for code in base.node_type_codes]
    ref_edges = {
        rel: [base.edges(rel)[0].tolist(), base.edges(rel)[1].tolist()]
        for rel in schema.relationships
    }

    def ref_rebuild() -> MultiplexHeteroGraph:
        return MultiplexHeteroGraph(
            schema,
            np.asarray(ref_codes, dtype=np.int64),
            {
                rel: (
                    np.asarray(src, dtype=np.int64),
                    np.asarray(dst, dtype=np.int64),
                )
                for rel, (src, dst) in ref_edges.items()
            },
        )

    ref_graph = ref_rebuild()

    def ref_read(kind: str, node: int, relation: str):
        # A fresh engine per read: nothing cached, nothing to invalidate.
        engine = BatchServingEngine(
            ColdStartEmbedder(store, base.num_nodes), ref_graph
        )
        if kind == "recommend":
            return engine.topk_batch([node], relation, k)[0]
        return engine.similar_topk([node], relation, k)[0]

    def reads_match(fast, slow) -> bool:
        return (
            np.array_equal(fast[0], slow[0])
            and np.array_equal(fast[1], slow[1], equal_nan=True)
        )

    read_diff = 0.0
    csr_diff = 0.0
    cold_diff = 0.0
    reads = cold_reads = compactions = 0
    mismatch = ""
    for op in trace:
        if op.op == "feedback":
            u, v = op.nodes
            result = service.feedback(u, v, op.relation)
            # Mirror on the reference: register cold endpoints, drop
            # duplicates, rebuild from scratch.
            for node, other in ((u, v), (v, u)):
                if node == len(ref_codes):
                    warm_type = schema.node_types[ref_codes[other]]
                    inferred = relation_endpoint_types(
                        ref_graph, op.relation
                    )[warm_type]
                    ref_codes.append(schema.node_type_index(inferred))
            if not ref_graph.has_edge(u, v, op.relation) and u != v:
                ref_edges[op.relation][0].append(u)
                ref_edges[op.relation][1].append(v)
            ref_graph = ref_rebuild()
            if result["compacted"]:
                compactions += 1
                # Bit-identity of the folded base vs a from-scratch build.
                for rel in schema.relationships:
                    fast_csr = service.view.base.csr(rel)
                    slow_csr = ref_graph.csr(rel)
                    if not (
                        np.array_equal(fast_csr[0], slow_csr[0])
                        and np.array_equal(fast_csr[1], slow_csr[1])
                    ):
                        csr_diff = float("inf")
            if result["new_nodes"]:
                # Cold-start gate: servable immediately, no restart.
                for cold in result["new_nodes"]:
                    fast = service.recommend(cold, op.relation, k)
                    slow = ref_read("recommend", cold, op.relation)
                    cold_reads += 1
                    if len(fast[0]) == 0 or not reads_match(fast, slow):
                        cold_diff = float("inf")
        else:
            node = op.nodes[0]
            fast = (
                service.recommend(node, op.relation, k)
                if op.op == "recommend"
                else service.similar(node, op.relation, k)
            )
            slow = ref_read(op.op, node, op.relation)
            reads += 1
            if not reads_match(fast, slow) and not mismatch:
                read_diff = float("inf")
                mismatch = f" (first mismatch: {op.op} node {node})"
    if compactions < 3:
        csr_diff = float("inf")

    results = [
        _result(
            "delta_read_equivalence", "service", read_diff,
            f"merged-view reads vs rebuild-per-edge reference "
            f"({reads} reads, {compactions} compactions){mismatch}",
        ),
        _result(
            "compaction_csr_bit_identity", "service", csr_diff,
            f"folded base CSR vs from-scratch build at {compactions} "
            f"compaction boundaries (>=3 required), all relations",
        ),
        _result(
            "cold_start_servable", "service", cold_diff,
            f"{cold_reads} never-seen nodes served immediately after "
            f"ingestion, matching the reference",
        ),
    ]

    digests = [
        replay_trace(fresh_service(), trace)["digest"] for _ in range(2)
    ]
    results.append(_result(
        "trace_replay_determinism", "service",
        0.0 if digests[0] == digests[1] else float("inf"),
        f"two fresh replays of a {len(trace)}-op seeded trace, digest "
        f"{digests[0][:12]}...",
    ))
    return results


# ======================================================================
# Suite driver
# ======================================================================
def run_oracle_suite(seed: int = 0, dataset=None) -> List[OracleResult]:
    """All oracle families; graph-based ones run on ``dataset``
    (taobao-alike default)."""
    results = sampling_oracles(dataset=dataset, seed=seed)
    results += metric_oracles(seed=seed)
    results += model_oracles(seed=seed)
    results += serving_oracles(dataset=dataset, seed=seed)
    return results


def format_oracle_table(results: Sequence[OracleResult]) -> str:
    """Human-readable fixed-width report."""
    width = max(len(r.name) for r in results) if results else 10
    lines = [
        f"{'oracle':<{width}}  {'component':<9}  {'max|diff|':>12}  status",
        "-" * (width + 40),
    ]
    for r in results:
        status = "ok" if r.passed else "FAIL"
        lines.append(
            f"{r.name:<{width}}  {r.component:<9}  {r.max_abs_diff:>12.3e}  {status}"
        )
    failed = [r for r in results if not r.passed]
    lines.append("-" * (width + 40))
    lines.append(
        f"{len(results) - len(failed)}/{len(results)} oracles passed"
        + (f"; FAILED: {', '.join(r.name for r in failed)}" if failed else "")
    )
    return "\n".join(lines)
