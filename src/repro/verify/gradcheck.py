"""Vectorised numeric gradient checking with a case registry.

This engine replaces the per-element loop that used to live in
:mod:`repro.nn.gradcheck` (which now delegates here).  Three improvements:

- **relative steps**: central differences use a per-element step
  ``eps * max(1, |x|)``, so parameters far from unit scale (huge embedding
  rows, tiny attention logits) are perturbed at the right magnitude instead
  of a fixed absolute ``1e-6``;
- **subset sampling**: large tensors are checked on a random subset of
  elements (every element of small tensors), bounding the number of forward
  evaluations while keeping coverage unbiased;
- **directional probe**: one extra pair of forward evaluations perturbs
  *every* element of *every* checked tensor along a random direction and
  compares against the analytic directional derivative — a whole-graph
  consistency check that costs O(1) evaluations regardless of parameter
  count.

On top of the engine sits a **registry** of gradient-check cases covering
every differentiable public op and module of :mod:`repro.nn` plus the core
HybridGNN modules (hierarchical attention, skip-gram loss, and the full
model forward).  :func:`uncovered_targets` computes which required targets
lack a case — the test suite asserts it is empty, so adding a new op without
a gradcheck fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng, spawn_rng

__all__ = [
    "TensorCheck",
    "GradCheckReport",
    "GradCheckCase",
    "numeric_gradient",
    "check_gradients",
    "check_gradients_report",
    "register",
    "gradcheck_cases",
    "run_gradcheck_suite",
    "required_targets",
    "covered_targets",
    "uncovered_targets",
    "registry_coverage",
    "freeze_rngs",
]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class TensorCheck:
    """Numeric-vs-analytic comparison for one tensor of one case."""

    name: str
    size: int
    checked: int
    max_abs_diff: float
    max_rel_diff: float
    worst_index: int
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "size": self.size,
            "checked": self.checked,
            "max_abs_diff": self.max_abs_diff,
            "max_rel_diff": self.max_rel_diff,
            "worst_index": self.worst_index,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass
class GradCheckReport:
    """Structured result of one gradient-check case."""

    case: str
    tensors: List[TensorCheck] = field(default_factory=list)
    directional_abs_diff: float = 0.0
    directional_passed: bool = True

    @property
    def passed(self) -> bool:
        return self.directional_passed and all(t.passed for t in self.tensors)

    @property
    def max_abs_diff(self) -> float:
        diffs = [t.max_abs_diff for t in self.tensors] + [self.directional_abs_diff]
        return float(max(diffs)) if diffs else 0.0

    @property
    def checked_elements(self) -> int:
        return sum(t.checked for t in self.tensors)

    def summary(self) -> str:
        status = "ok" if self.passed else "FAIL"
        lines = [
            f"gradcheck[{self.case}] {status}: "
            f"{self.checked_elements} elements, max |diff| {self.max_abs_diff:.3g}"
        ]
        for t in self.tensors:
            if not t.passed:
                lines.append(
                    f"  {t.name}: max |numeric - analytic| = {t.max_abs_diff:.3g} "
                    f"at flat index {t.worst_index} ({t.checked}/{t.size} checked)"
                    + (f" [{t.message}]" if t.message else "")
                )
        if not self.directional_passed:
            lines.append(
                f"  directional probe: |diff| = {self.directional_abs_diff:.3g}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "case": self.case,
            "passed": self.passed,
            "max_abs_diff": self.max_abs_diff,
            "checked_elements": self.checked_elements,
            "directional_abs_diff": self.directional_abs_diff,
            "directional_passed": self.directional_passed,
            "tensors": [t.to_dict() for t in self.tensors],
        }


# ----------------------------------------------------------------------
# Core numeric differentiation
# ----------------------------------------------------------------------
def _steps_for(values: np.ndarray, eps: float) -> np.ndarray:
    """Per-element relative step ``eps * max(1, |x|)``."""
    return eps * np.maximum(1.0, np.abs(values))


def numeric_gradient(
    func: Callable[[], Tensor],
    tensor: Tensor,
    eps: float = 1e-6,
    indices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``tensor``.

    The step for element ``x`` is ``eps * max(1, |x|)`` — a relative step
    that stays accurate for parameters of any magnitude (the historical
    absolute ``eps`` underflowed the perturbation for large weights and
    swamped small ones).

    ``indices`` restricts the computation to a subset of flat indices;
    unchecked entries of the returned array are zero.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    if indices is None:
        indices = np.arange(flat.size)
    steps = _steps_for(flat[indices], eps)
    for idx, h in zip(indices.tolist(), steps.tolist()):
        original = flat[idx]
        flat[idx] = original + h
        plus = func().item()
        flat[idx] = original - h
        minus = func().item()
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2.0 * h)
    return grad


def _directional_probe(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    grads: Sequence[Optional[np.ndarray]],
    eps: float,
    rng: np.random.Generator,
) -> float:
    """|numeric - analytic| directional derivative along a random direction.

    Perturbs all elements of all tensors at once (scaled per element like
    :func:`numeric_gradient`), so gradient bugs anywhere in the graph show
    up for two extra forward evaluations total.
    """
    directions = [rng.standard_normal(t.data.shape) for t in tensors]
    scales = [np.maximum(1.0, np.abs(t.data)) for t in tensors]
    originals = [t.data.copy() for t in tensors]
    try:
        for t, o, d, s in zip(tensors, originals, directions, scales):
            t.data = o + eps * s * d
        plus = func().item()
        for t, o, d, s in zip(tensors, originals, directions, scales):
            t.data = o - eps * s * d
        minus = func().item()
    finally:
        for t, o in zip(tensors, originals):
            t.data = o
    numeric = (plus - minus) / (2.0 * eps)
    analytic = sum(
        float((g * s * d).sum())
        for g, s, d in zip(grads, scales, directions)
        if g is not None
    )
    return abs(numeric - analytic)


def check_gradients_report(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    names: Optional[Sequence[str]] = None,
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
    max_elements: Optional[int] = None,
    rng: SeedLike = None,
    case: str = "adhoc",
) -> GradCheckReport:
    """Compare autograd gradients of ``func`` against numeric ones.

    ``func`` must rebuild the graph on each call (it is invoked repeatedly
    with perturbed inputs).  When ``max_elements`` is set, tensors larger
    than that are checked on a random element subset.  Never raises —
    failures are recorded in the returned :class:`GradCheckReport`.
    """
    rng = as_rng(rng)
    tensors = list(tensors)
    if names is None:
        names = [t.name or f"tensor{i}" for i, t in enumerate(tensors)]
    for tensor in tensors:
        tensor.zero_grad()
    out = func()
    out.backward()
    grads = [None if t.grad is None else t.grad.copy() for t in tensors]
    for tensor in tensors:
        tensor.zero_grad()

    report = GradCheckReport(case=case)
    for tensor, grad, name in zip(tensors, grads, names):
        size = tensor.data.size
        if grad is None:
            report.tensors.append(
                TensorCheck(
                    name=name, size=size, checked=0, max_abs_diff=float("inf"),
                    max_rel_diff=float("inf"), worst_index=-1, passed=False,
                    message="no gradient reached this tensor",
                )
            )
            continue
        if max_elements is not None and size > max_elements:
            indices = np.sort(rng.choice(size, size=max_elements, replace=False))
        else:
            indices = np.arange(size)
        numeric = numeric_gradient(func, tensor, eps=eps, indices=indices)
        num = numeric.reshape(-1)[indices]
        ana = grad.reshape(-1)[indices]
        diff = np.abs(num - ana)
        tol = atol + rtol * np.abs(num)
        worst = int(np.argmax(diff - tol))
        rel = diff / np.maximum(np.abs(num), 1e-12)
        report.tensors.append(
            TensorCheck(
                name=name,
                size=size,
                checked=len(indices),
                max_abs_diff=float(diff.max()) if len(diff) else 0.0,
                max_rel_diff=float(rel.max()) if len(rel) else 0.0,
                worst_index=int(indices[worst]) if len(diff) else -1,
                passed=bool(np.all(diff <= tol)),
            )
        )

    probe_diff = _directional_probe(func, tensors, grads, eps, rng)
    # Tolerance for the probe scales with the gradient mass it aggregates.
    mass = sum(float(np.abs(g).sum()) for g in grads if g is not None)
    report.directional_abs_diff = float(probe_diff)
    report.directional_passed = bool(probe_diff <= atol * 10 + rtol * 10 * max(mass, 1.0))
    return report


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradients of ``func`` match numeric ones.

    Historical assertion-style interface (every element checked); the
    engine behind it is :func:`check_gradients_report`.
    """
    report = check_gradients_report(
        func, tensors, eps=eps, atol=atol, rtol=rtol, max_elements=None, rng=0
    )
    assert report.passed, report.summary()


# ----------------------------------------------------------------------
# Deterministic replay of stochastic modules
# ----------------------------------------------------------------------
def _collect_generators(obj, seen: set, out: List[np.random.Generator]) -> None:
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.random.Generator):
        out.append(obj)
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            _collect_generators(item, seen, out)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            _collect_generators(item, seen, out)
        return
    # Recurse only into this package's objects to bound the walk.
    if type(obj).__module__.split(".")[0] == "repro" and hasattr(obj, "__dict__"):
        for item in vars(obj).values():
            _collect_generators(item, seen, out)


def freeze_rngs(func: Callable[[], Tensor], *roots) -> Callable[[], Tensor]:
    """Wrap ``func`` so every RNG reachable from ``roots`` replays identically.

    Needed to gradcheck stochastic modules (dropout, neighborhood sampling):
    the wrapper snapshots the state of every :class:`numpy.random.Generator`
    found by walking the roots and restores it before each call, making the
    function deterministic under repeated evaluation.
    """
    generators: List[np.random.Generator] = []
    _collect_generators(list(roots), set(), generators)
    states = [gen.bit_generator.state for gen in generators]

    def frozen() -> Tensor:
        for gen, state in zip(generators, states):
            gen.bit_generator.state = state
        return func()

    return frozen


# ----------------------------------------------------------------------
# Case registry
# ----------------------------------------------------------------------
BuildResult = Tuple[Callable[[], Tensor], List[Tensor], List[str]]


@dataclass(frozen=True)
class GradCheckCase:
    """A named, reproducible gradient-check scenario.

    ``build(rng)`` returns ``(func, tensors, names)`` where ``func`` is the
    scalar forward closure and ``tensors`` the leaves to check.  ``targets``
    names the public ops/modules the case covers (for coverage accounting).
    """

    name: str
    targets: Tuple[str, ...]
    build: Callable[[np.random.Generator], BuildResult]
    atol: float = 1e-4
    rtol: float = 1e-4
    eps: float = 1e-6
    max_elements: Optional[int] = 32


_REGISTRY: Dict[str, GradCheckCase] = {}


def register(name: str, targets: Sequence[str], **overrides):
    """Decorator adding a case builder to the registry."""

    def decorate(build: Callable[[np.random.Generator], BuildResult]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate gradcheck case {name!r}")
        _REGISTRY[name] = GradCheckCase(
            name=name, targets=tuple(targets), build=build, **overrides
        )
        return build

    return decorate


def gradcheck_cases() -> List[GradCheckCase]:
    """All registered cases, in registration order."""
    return list(_REGISTRY.values())


def run_gradcheck_suite(
    names: Optional[Sequence[str]] = None, seed: int = 0
) -> List[GradCheckReport]:
    """Run every (or the named) registered case; never raises."""
    selected = gradcheck_cases()
    if names is not None:
        wanted = set(names)
        unknown = wanted - {case.name for case in selected}
        if unknown:
            raise KeyError(f"unknown gradcheck cases: {sorted(unknown)}")
        selected = [case for case in selected if case.name in wanted]
    reports = []
    for index, case in enumerate(selected):
        rng = as_rng((seed, index))
        try:
            func, tensors, tensor_names = case.build(rng)
            report = check_gradients_report(
                func, tensors, names=tensor_names, eps=case.eps, atol=case.atol,
                rtol=case.rtol, max_elements=case.max_elements, rng=rng,
                case=case.name,
            )
        except Exception as exc:  # surface builder/runtime errors as failures
            report = GradCheckReport(case=case.name)
            report.tensors.append(
                TensorCheck(
                    name="<build>", size=0, checked=0,
                    max_abs_diff=float("inf"), max_rel_diff=float("inf"),
                    worst_index=-1, passed=False,
                    message=f"{type(exc).__name__}: {exc}",
                )
            )
        reports.append(report)
    return reports


# ----------------------------------------------------------------------
# Coverage accounting
# ----------------------------------------------------------------------
_DUNDER_OPS = {
    "__add__": "add",
    "__neg__": "neg",
    "__sub__": "sub",
    "__mul__": "mul",
    "__truediv__": "truediv",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "__getitem__": "getitem",
}

#: Tensor methods that do not produce differentiable outputs.
_NON_DIFF_METHODS = {"numpy", "item", "detach", "zero_grad", "backward"}

#: ``repro.nn.__all__`` entries that are not differentiable-op targets.
_NON_DIFF_EXPORTS = {
    "Tensor",
    "init",
    "make_aggregator",
    # Sanitizer control surface (repro.nn.sanitizer) — no gradients involved.
    "sanitize",
    "set_sanitizer",
    "sanitizer_enabled",
    "detect_anomaly",
    "set_detect_anomaly",
    "anomaly_enabled",
}

#: Core-package targets the registry must also cover.
CORE_TARGETS = (
    "core.softplus",
    "core.skip_gram_loss",
    "core.MetapathLevelAttention",
    "core.RelationshipLevelAttention",
    "core.HybridGNN",
)


def tensor_ops() -> List[str]:
    """Differentiable :class:`Tensor` operations, discovered by inspection.

    New ops added to ``Tensor`` automatically appear here, so the coverage
    test fails until a gradcheck case exists for them.
    """
    ops = set()
    for name, member in vars(Tensor).items():
        if name in _DUNDER_OPS:
            ops.add(_DUNDER_OPS[name])
        elif name.startswith("_") or name in _NON_DIFF_METHODS:
            continue
        elif callable(member):
            ops.add(name)
    return sorted(ops)


def required_targets() -> List[str]:
    """Every op/module the registry must cover."""
    import repro.nn as nn
    from repro.nn.aggregators import Aggregator

    targets = {f"Tensor.{op}" for op in tensor_ops()}
    containers = (Module, ModuleList, ModuleDict)
    for name in nn.__all__:
        if name in _NON_DIFF_EXPORTS:
            continue
        obj = getattr(nn, name)
        if isinstance(obj, type):
            if obj in containers or obj is Aggregator or obj is Parameter:
                continue
            if issubclass(obj, Optimizer):
                continue
            if issubclass(obj, Module):
                targets.add(name)
        elif callable(obj):
            targets.add(name)
    targets.update(CORE_TARGETS)
    return sorted(targets)


def covered_targets() -> List[str]:
    covered = set()
    for case in _REGISTRY.values():
        covered.update(case.targets)
    return sorted(covered)


def uncovered_targets() -> List[str]:
    """Required targets with no registered case (must be empty)."""
    return sorted(set(required_targets()) - set(covered_targets()))


def registry_coverage() -> Dict[str, List[str]]:
    """Map each required target to the cases covering it."""
    coverage: Dict[str, List[str]] = {target: [] for target in required_targets()}
    for case in _REGISTRY.values():
        for target in case.targets:
            coverage.setdefault(target, []).append(case.name)
    return coverage


# ----------------------------------------------------------------------
# Registered cases: Tensor ops
# ----------------------------------------------------------------------
def _t(rng: np.random.Generator, *shape: int, positive: bool = False,
       away_from_zero: float = 0.0, scale: float = 1.0, name: str = "") -> Tensor:
    data = rng.standard_normal(shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    elif away_from_zero:
        data = data + away_from_zero * np.sign(data + (data == 0))
    return Tensor(data, requires_grad=True, name=name)


@register("tensor.add", targets=("Tensor.add",))
def _case_add(rng):
    a, b = _t(rng, 3, 4), _t(rng, 4)  # broadcasting exercised
    return (lambda: (a + b).sum()), [a, b], ["a", "b"]


@register("tensor.neg", targets=("Tensor.neg",))
def _case_neg(rng):
    a = _t(rng, 3, 4)
    return (lambda: (-a).sum()), [a], ["a"]


@register("tensor.sub", targets=("Tensor.sub",))
def _case_sub(rng):
    a, b = _t(rng, 2, 5), _t(rng, 1, 5)
    return (lambda: (a - b).sum()), [a, b], ["a", "b"]


@register("tensor.mul", targets=("Tensor.mul",))
def _case_mul(rng):
    a, b = _t(rng, 3, 4), _t(rng, 3, 1)
    return (lambda: (a * b).sum()), [a, b], ["a", "b"]


@register("tensor.truediv", targets=("Tensor.truediv",))
def _case_div(rng):
    a, b = _t(rng, 3, 4), _t(rng, 3, 4, positive=True)
    return (lambda: (a / b).sum()), [a, b], ["a", "b"]


@register("tensor.pow", targets=("Tensor.pow",))
def _case_pow(rng):
    a = _t(rng, 3, 4, positive=True)
    return (lambda: (a ** 1.7).sum()), [a], ["a"]


@register("tensor.matmul", targets=("Tensor.matmul",))
def _case_matmul(rng):
    a, b = _t(rng, 3, 4), _t(rng, 4, 2)
    return (lambda: (a @ b).sum()), [a, b], ["a", "b"]


@register("tensor.matmul_batched", targets=("Tensor.matmul",))
def _case_matmul_batched(rng):
    a, b = _t(rng, 2, 3, 4), _t(rng, 4, 5)
    return (lambda: (a @ b).sum()), [a, b], ["a", "b"]


@register("tensor.matmul_vector", targets=("Tensor.matmul",))
def _case_matmul_vector(rng):
    a, b = _t(rng, 4), _t(rng, 3, 4, 2)
    return (lambda: (a @ b).sum()), [a, b], ["a", "b"]


@register("tensor.sum", targets=("Tensor.sum",))
def _case_sum(rng):
    a = _t(rng, 3, 4)
    weights = rng.standard_normal(3)
    return (lambda: (a.sum(axis=1) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.mean", targets=("Tensor.mean",))
def _case_mean(rng):
    a = _t(rng, 3, 4)
    weights = rng.standard_normal((3, 1))
    return (lambda: (a.mean(axis=1, keepdims=True) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.max", targets=("Tensor.max",))
def _case_max(rng):
    a = _t(rng, 4, 5)
    return (lambda: a.max(axis=1).sum()), [a], ["a"]


@register("tensor.exp", targets=("Tensor.exp",))
def _case_exp(rng):
    a = _t(rng, 3, 4)
    return (lambda: a.exp().sum()), [a], ["a"]


@register("tensor.log", targets=("Tensor.log",))
def _case_log(rng):
    a = _t(rng, 3, 4, positive=True)
    return (lambda: a.log().sum()), [a], ["a"]


@register("tensor.sigmoid", targets=("Tensor.sigmoid",))
def _case_sigmoid(rng):
    a = _t(rng, 3, 4, scale=2.0)
    return (lambda: a.sigmoid().sum()), [a], ["a"]


@register("tensor.tanh", targets=("Tensor.tanh",))
def _case_tanh(rng):
    a = _t(rng, 3, 4)
    return (lambda: a.tanh().sum()), [a], ["a"]


@register("tensor.relu", targets=("Tensor.relu",))
def _case_relu(rng):
    a = _t(rng, 4, 5, away_from_zero=0.2)
    return (lambda: a.relu().sum()), [a], ["a"]


@register("tensor.leaky_relu", targets=("Tensor.leaky_relu",))
def _case_leaky_relu(rng):
    a = _t(rng, 4, 5, away_from_zero=0.2)
    return (lambda: a.leaky_relu(0.1).sum()), [a], ["a"]


@register("tensor.softmax", targets=("Tensor.softmax",))
def _case_softmax(rng):
    a = _t(rng, 3, 5)
    weights = rng.standard_normal((3, 5))
    return (lambda: (a.softmax(axis=-1) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.log_softmax", targets=("Tensor.log_softmax",))
def _case_log_softmax(rng):
    a = _t(rng, 3, 5)
    weights = rng.standard_normal((3, 5))
    return (lambda: (a.log_softmax(axis=-1) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.reshape", targets=("Tensor.reshape",))
def _case_reshape(rng):
    a = _t(rng, 3, 4)
    weights = rng.standard_normal((2, 6))
    return (lambda: (a.reshape(2, 6) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.transpose", targets=("Tensor.transpose",))
def _case_transpose(rng):
    a = _t(rng, 3, 4)
    weights = rng.standard_normal((4, 3))
    return (lambda: (a.transpose(-2, -1) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.getitem", targets=("Tensor.getitem",))
def _case_getitem(rng):
    a = _t(rng, 5, 4)
    idx = np.asarray([0, 2, 2, 4])  # repeated rows exercise scatter-add
    return (lambda: (a[1:4].sum() + a[idx].sum())), [a], ["a"]


@register("tensor.squeeze_unsqueeze", targets=("Tensor.squeeze", "Tensor.unsqueeze"))
def _case_squeeze(rng):
    a = _t(rng, 3, 1, 4)
    weights = rng.standard_normal((1, 3, 4))
    return (lambda: (a.squeeze(1).unsqueeze(0) * Tensor(weights)).sum()), [a], ["a"]


@register("tensor.broadcast_to", targets=("Tensor.broadcast_to",))
def _case_broadcast(rng):
    a = _t(rng, 1, 4)
    weights = rng.standard_normal((3, 4))
    return (lambda: (a.broadcast_to((3, 4)) * Tensor(weights)).sum()), [a], ["a"]


# ----------------------------------------------------------------------
# Registered cases: functional ops
# ----------------------------------------------------------------------
@register("functional.concat", targets=("concat",))
def _case_concat(rng):
    from repro.nn.tensor import concat

    a, b = _t(rng, 2, 3), _t(rng, 2, 4)
    weights = rng.standard_normal((2, 7))
    return (lambda: (concat([a, b], axis=1) * Tensor(weights)).sum()), [a, b], ["a", "b"]


@register("functional.stack", targets=("stack",))
def _case_stack(rng):
    from repro.nn.tensor import stack

    a, b = _t(rng, 2, 3), _t(rng, 2, 3)
    weights = rng.standard_normal((2, 2, 3))
    return (lambda: (stack([a, b], axis=1) * Tensor(weights)).sum()), [a, b], ["a", "b"]


@register("functional.embedding_lookup", targets=("embedding_lookup",))
def _case_embedding_lookup(rng):
    from repro.nn.tensor import embedding_lookup

    weight = _t(rng, 6, 4)
    idx = np.asarray([[0, 2], [2, 5]])  # repeated rows exercise scatter-add
    return (lambda: embedding_lookup(weight, idx).sum()), [weight], ["weight"]


@register("functional.sparse_matmul", targets=("sparse_matmul",))
def _case_sparse_matmul(rng):
    from scipy import sparse

    from repro.nn.tensor import sparse_matmul

    dense = (rng.random((4, 5)) < 0.5) * rng.standard_normal((4, 5))
    matrix = sparse.csr_matrix(dense)
    x = _t(rng, 5, 3)
    return (lambda: sparse_matmul(matrix, x).sum()), [x], ["x"]


@register("functional.where", targets=("where",))
def _case_where(rng):
    from repro.nn.tensor import where

    condition = rng.random((3, 4)) < 0.5
    a, b = _t(rng, 3, 4), _t(rng, 3, 4)
    return (lambda: where(condition, a, b).sum()), [a, b], ["a", "b"]


# ----------------------------------------------------------------------
# Registered cases: layers and aggregators
# ----------------------------------------------------------------------
@register("layers.linear", targets=("Linear",))
def _case_linear(rng):
    from repro.nn.layers import Linear

    layer = Linear(4, 3, rng=spawn_rng(rng))
    x = _t(rng, 5, 4)
    tensors = [x, layer.weight, layer.bias]
    return (lambda: layer(x).sum()), tensors, ["x", "weight", "bias"]


@register("layers.embedding", targets=("Embedding",))
def _case_embedding(rng):
    from repro.nn.layers import Embedding

    layer = Embedding(7, 4, rng=spawn_rng(rng))
    idx = np.asarray([0, 3, 3, 6])
    return (lambda: layer(idx).sum()), [layer.weight], ["weight"]


@register("layers.dropout", targets=("Dropout",))
def _case_dropout(rng):
    from repro.nn.layers import Dropout

    layer = Dropout(p=0.4, rng=spawn_rng(rng))
    x = _t(rng, 5, 6)
    func = freeze_rngs(lambda: layer(x).sum(), layer)
    return func, [x], ["x"]


@register("layers.layer_norm", targets=("LayerNorm",))
def _case_layer_norm(rng):
    from repro.nn.layers import LayerNorm

    layer = LayerNorm(6)
    x = _t(rng, 4, 6)
    weights = rng.standard_normal((4, 6))
    tensors = [x, layer.gamma, layer.beta]
    return (
        (lambda: (layer(x) * Tensor(weights)).sum()),
        tensors,
        ["x", "gamma", "beta"],
    )


@register("layers.sequential", targets=("Sequential", "ReLU"))
def _case_sequential(rng):
    from repro.nn.layers import Linear, ReLU, Sequential

    model = Sequential(
        Linear(4, 5, rng=spawn_rng(rng)), ReLU(), Linear(5, 2, rng=spawn_rng(rng))
    )
    x = _t(rng, 3, 4)
    tensors = [x, model.steps[0].weight, model.steps[2].weight]
    return (lambda: model(x).sum()), tensors, ["x", "w0", "w2"]


@register("layers.tanh_module", targets=("Tanh",))
def _case_tanh_module(rng):
    from repro.nn.layers import Tanh

    x = _t(rng, 3, 4)
    layer = Tanh()
    return (lambda: layer(x).sum()), [x], ["x"]


@register("layers.self_attention", targets=("SelfAttention",))
def _case_self_attention(rng):
    from repro.nn.attention import SelfAttention

    attn = SelfAttention(4, 3, rng=spawn_rng(rng))
    x = _t(rng, 2, 5, 4)
    tensors = [x, attn.query.weight, attn.key.weight, attn.value.weight]
    return (lambda: attn(x).sum()), tensors, ["x", "wq", "wk", "wv"]


@register("aggregators.mean", targets=("MeanAggregator",))
def _case_mean_aggregator(rng):
    from repro.nn.aggregators import MeanAggregator

    agg = MeanAggregator(4, 3, rng=spawn_rng(rng))
    s, n = _t(rng, 5, 4), _t(rng, 5, 3, 4)
    tensors = [s, n, agg.combine.weight]
    return (lambda: agg(s, n).sum()), tensors, ["self", "neighbors", "combine.weight"]


@register("aggregators.pool", targets=("MaxPoolAggregator",))
def _case_pool_aggregator(rng):
    from repro.nn.aggregators import MaxPoolAggregator

    agg = MaxPoolAggregator(4, 3, rng=spawn_rng(rng))
    s, n = _t(rng, 5, 4), _t(rng, 5, 3, 4)
    tensors = [s, n, agg.transform.weight]
    return (lambda: agg(s, n).sum()), tensors, ["self", "neighbors", "transform.weight"]


@register("aggregators.lstm", targets=("LSTMAggregator",), atol=2e-3, rtol=2e-3)
def _case_lstm_aggregator(rng):
    from repro.nn.aggregators import LSTMAggregator

    agg = LSTMAggregator(3, 2, rng=spawn_rng(rng))
    s, n = _t(rng, 4, 3), _t(rng, 4, 3, 3)
    tensors = [s, n, agg.w_x, agg.w_h, agg.b]
    return (
        (lambda: agg(s, n).sum()),
        tensors,
        ["self", "neighbors", "w_x", "w_h", "b"],
    )


# ----------------------------------------------------------------------
# Registered cases: core model components
# ----------------------------------------------------------------------
@register("core.softplus", targets=("core.softplus",))
def _case_softplus(rng):
    from repro.core.loss import softplus

    x = _t(rng, 4, 5, scale=3.0)
    return (lambda: softplus(x).sum()), [x], ["x"]


@register("core.skip_gram_loss", targets=("core.skip_gram_loss",))
def _case_skip_gram_loss(rng):
    from repro.core.loss import skip_gram_loss
    from repro.nn.layers import Embedding

    table = Embedding(8, 4, rng=spawn_rng(rng))
    targets = _t(rng, 3, 4)
    contexts = np.asarray([1, 4, 4])
    negatives = np.asarray([[0, 2], [3, 7], [5, 1]])
    tensors = [targets, table.weight]
    return (
        (lambda: skip_gram_loss(targets, table, contexts, negatives)),
        tensors,
        ["targets", "context.weight"],
    )


@register("core.metapath_attention", targets=("core.MetapathLevelAttention",))
def _case_metapath_attention(rng):
    from repro.core.hierarchical_attention import MetapathLevelAttention

    attn = MetapathLevelAttention(4, rng=spawn_rng(rng))
    flows = [_t(rng, 3, 4) for _ in range(3)]
    tensors = flows + [attn.attention.query.weight]
    names = [f"flow{i}" for i in range(3)] + ["wq"]
    return (lambda: attn(flows).sum()), tensors, names


@register("core.relationship_attention", targets=("core.RelationshipLevelAttention",))
def _case_relationship_attention(rng):
    from repro.core.hierarchical_attention import RelationshipLevelAttention

    attn = RelationshipLevelAttention(4, rng=spawn_rng(rng))
    relations = [_t(rng, 3, 4) for _ in range(2)]
    tensors = relations + [attn.attention.value.weight]
    names = ["rel0", "rel1", "wv"]
    return (lambda: attn(relations).sum()), tensors, names


def _tiny_multiplex_graph():
    """Users 0-2, items 3-6, two overlapping relationships (conftest twin)."""
    from repro.graph.builder import GraphBuilder
    from repro.graph.schema import GraphSchema

    builder = GraphBuilder(GraphSchema(["user", "item"], ["view", "buy"]))
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


@register(
    "core.hybridgnn_forward", targets=("core.HybridGNN",),
    atol=1e-3, rtol=1e-3, max_elements=4,
)
def _case_hybridgnn(rng):
    from repro.core.config import HybridGNNConfig
    from repro.core.model import HybridGNN
    from repro.graph.schema import intra_relationship_schemes

    graph = _tiny_multiplex_graph()
    schemes = intra_relationship_schemes(
        ("U-I-U",), graph.schema.relationships, {"U": "user", "I": "item"}
    )
    config = HybridGNNConfig(
        base_dim=4, edge_dim=3, metapath_fanouts=(2, 2), exploration_fanout=2,
        exploration_depth=1, eval_samples=1, num_negatives=1,
    )
    model = HybridGNN(graph, schemes, config, rng=spawn_rng(rng))
    nodes = np.asarray([0, 1, 3, 5])
    func = freeze_rngs(lambda: model(nodes, "view").sum(), model)

    # Check a representative spread of the parameters the forward reaches.
    out = func()
    out.backward()
    reached = [(n, p) for n, p in model.named_parameters() if p.grad is not None]
    step = max(1, len(reached) // 6)
    picked = reached[::step][:6]
    for param in model.parameters():
        param.zero_grad()
    names = [name for name, _ in picked]
    tensors = [param for _, param in picked]
    return func, tensors, names
