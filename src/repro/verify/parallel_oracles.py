"""Differential oracles for the sharded multi-worker trainer.

Five gates, in two strictness classes:

**Bit-exact** (tolerance 1e-6, observed diff must be 0.0):

- the staged ``SkipGramTrainer.fit`` (sample→batch→update) against the
  pre-refactor monolithic loop kept verbatim as
  ``SkipGramTrainer._reference_fit`` — losses, validation scores and every
  final parameter, on identically seeded twin models;
- the shard plan — every worker count must partition the node space
  exactly (disjoint and complete);
- ``ParallelSkipGramTrainer`` with ``workers=1`` (the deterministic mode)
  across two identically seeded runs;
- averaging mode with K=2 across two identically seeded runs (averaging
  is deterministic for any K; hogwild deliberately is not).

**Metric tolerance** (:data:`AUC_TOLERANCE`):

- K-worker training (hogwild and averaging) against the single-worker
  baseline on a vectorized-engine graph large enough that the validation
  set pins ROC-AUC to well under the tolerance — the oracle reports
  ``|auc_K - auc_1|`` on the [0, 1] scale.  (Metrics come back in
  percent; the oracle divides by 100.)

``benchmarks/bench_training.py`` re-runs the tolerance gate at 10⁶ nodes
with wall-clock measurements; this suite keeps the CI-sized version.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
from repro.datasets import load_dataset, split_edges
from repro.train import (
    ParallelSkipGramTrainer,
    ParallelTrainerConfig,
    shard_nodes,
)
from repro.verify.oracles import OracleResult, _result

__all__ = ["AUC_TOLERANCE", "parallel_oracles"]

#: K-worker training must land within this ROC-AUC distance (on the [0, 1]
#: scale) of the single-worker baseline.
AUC_TOLERANCE = 0.01

#: Trainer settings shared by the K-worker quality gates.
_GATE_CONFIG = dict(
    dim=16, epochs=3, batch_size=2048, num_walks=1, walk_length=6, window=2
)


def _history_state_diff(hist_a, hist_b, state_a, state_b) -> float:
    """0.0 iff histories and parameter states are bit-identical."""
    if hist_a.losses != hist_b.losses:
        return float("inf")
    if hist_a.val_scores != hist_b.val_scores:
        return float("inf")
    if set(state_a) != set(state_b):
        return float("inf")
    diffs = [
        float(np.max(np.abs(state_a[name] - state_b[name])))
        if state_a[name].size
        else 0.0
        for name in state_a
    ]
    return max(diffs) if diffs else 0.0


def _staged_vs_reference(seed: int) -> OracleResult:
    dataset = load_dataset("taobao", scale=0.25, seed=7)
    model_config = HybridGNNConfig(
        base_dim=8, edge_dim=4, metapath_fanouts=(3, 2, 2, 2, 2, 2),
        exploration_fanout=3, exploration_depth=1,
    )
    trainer_config = TrainerConfig(
        epochs=2, batch_size=128, num_walks=1, walk_length=6, window=2,
        patience=2,
    )

    def run(method_name: str):
        split = split_edges(dataset.graph, rng=8)
        model = HybridGNN(
            split.train_graph, dataset.all_schemes(), model_config, rng=seed
        )
        trainer = SkipGramTrainer(
            model, dataset.all_schemes(), split, trainer_config,
            rng=seed + 1,
        )
        history = getattr(trainer, method_name)()
        return history, model.state_dict()

    hist_staged, state_staged = run("fit")
    hist_ref, state_ref = run("_reference_fit")
    diff = _history_state_diff(hist_staged, hist_ref, state_staged, state_ref)
    return _result(
        "staged_fit_vs_monolith", "trainer", diff,
        detail="sample→batch→update fit vs pre-refactor _reference_fit "
               f"({len(hist_ref.losses)} epochs, losses+val+params)",
    )


def _shard_plan_exact() -> OracleResult:
    diff = 0.0
    checked = 0
    for num_nodes in (1, 97, 1000):
        for workers in (1, 2, 3, 8):
            shards = shard_nodes(num_nodes, workers)
            merged = np.concatenate(shards) if shards else np.empty(0)
            if len(merged) != num_nodes:
                diff = float("inf")
            elif not np.array_equal(np.sort(merged), np.arange(num_nodes)):
                diff = float("inf")
            checked += 1
    return _result(
        "shard_plan_partition", "parallel", diff,
        detail=f"{checked} (nodes, workers) plans disjoint + complete",
    )


def _xl_split(seed: int):
    dataset = load_dataset("taobao-xl", scale=0.02, seed=7)
    return dataset, split_edges(dataset.graph, rng=8)


def _fit(dataset, split, seed: int, **config_kwargs):
    trainer = ParallelSkipGramTrainer(
        dataset.all_schemes(), split,
        ParallelTrainerConfig(**{**_GATE_CONFIG, **config_kwargs}),
        rng=seed,
    )
    history = trainer.fit()
    return history, trainer.state_dict()


def _determinism(dataset, split, seed: int, name: str,
                 **config_kwargs) -> OracleResult:
    hist_a, state_a = _fit(dataset, split, seed, **config_kwargs)
    hist_b, state_b = _fit(dataset, split, seed, **config_kwargs)
    diff = _history_state_diff(hist_a, hist_b, state_a, state_b)
    workers = config_kwargs.get("workers", 1)
    mode = config_kwargs.get("update_mode", "hogwild")
    return _result(
        name, "parallel", diff,
        detail=f"two seeded runs, workers={workers} mode={mode} "
               "(losses+val+tables)",
    )


def parallel_oracles(seed: int = 0) -> List[OracleResult]:
    """The ``repro verify --suite parallel`` gate set."""
    results = [
        _staged_vs_reference(seed),
        _shard_plan_exact(),
    ]

    dataset, split = _xl_split(seed)
    results.append(
        _determinism(dataset, split, seed, "single_worker_determinism",
                     workers=1)
    )
    results.append(
        _determinism(dataset, split, seed, "average_mode_determinism",
                     workers=2, update_mode="average")
    )

    baseline, _ = _fit(dataset, split, seed, workers=1)
    for mode in ("hogwild", "average"):
        parallel, _ = _fit(dataset, split, seed, workers=2, update_mode=mode)
        # Metrics are percentages; the gate works on the [0, 1] AUC scale.
        diff = abs(parallel.best_val_score - baseline.best_val_score) / 100.0
        results.append(
            _result(
                f"two_worker_{mode}_auc", "parallel", diff,
                tolerance=AUC_TOLERANCE,
                detail=(
                    f"val ROC-AUC workers=2 {parallel.best_val_score:.2f}% "
                    f"vs workers=1 {baseline.best_val_score:.2f}% "
                    f"({dataset.graph.num_nodes} nodes)"
                ),
            )
        )
    return results
