"""Differential oracles for the runtime allocation-budget sanitizer.

``repro verify --suite alloc`` runs five gates:

- **alloc_tracker_selftest** — a deliberately planted over-budget stage
  (one activation allocating a known multi-megabyte temporary against a
  deliberately tiny budget) must be flagged by
  :func:`repro.perf.check_budgets`, and the same measurement against a
  generous budget must pass.  The miswired-canary idiom: a sanitizer
  that cannot catch a planted bug proves nothing by passing elsewhere.
- **serving_within_budget** — the canonical serving workload (batch
  recommendations plus a similarity query on the taobao-alike graph)
  replayed under :func:`repro.perf.allocation_tracker`; every measured
  stage must sit inside its committed ``benchmarks/alloc_budgets.json``
  ceiling, and every budgeted ``serving.*`` stage must actually have
  been measured (a silently-skipped workload cannot pass).
- **training_within_budget** — same contract for the canonical training
  workload (one ``generate_pairs``/``make_batches``/``apply_updates``
  cycle of :class:`~repro.core.trainer.SkipGramTrainer`) over the
  budgeted ``sampling.*`` / ``train.*`` stages.
- **tracker_bitidentity_serving** — the serving workload with the
  tracker off vs on must produce bit-identical candidate ids and
  scores: the tracker only reads tracemalloc counters, so enabling it
  must not perturb numerics, the RNG stream, or tie-breaking.
- **tracker_bitidentity_training** — the training cycle off vs on must
  produce a bit-identical epoch loss and parameter tables.

The budget workloads are pinned to an internal canonical seed
(:data:`_CANONICAL_SEED`) rather than the suite's ``--seed``: the
committed budgets describe *these specific* workloads, and re-seeding
would change allocation sizes and turn the contract into noise.  The
``--seed`` argument only perturbs the planted selftest allocation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.perf import (
    StageProfiler,
    allocation_tracker,
    allocation_tracking_enabled,
    check_budgets,
    load_budgets,
)
from repro.perf.allocations import StageAllocation
from repro.utils.rng import as_rng
from repro.verify.oracles import OracleResult, _array_diff, _result

__all__ = [
    "alloc_oracles",
    "measure_alloc_stats",
    "refresh_alloc_budgets",
]

#: The budget workloads always run at this seed (see module docstring).
_CANONICAL_SEED = 0

#: Budget-file stages each canonical workload is responsible for: a
#: budgeted stage carrying one of these prefixes that the workload did
#: not measure fails the coverage half of the within-budget oracles.
_SERVING_PREFIXES = ("serving.",)
_TRAINING_PREFIXES = ("sampling.", "train.")


# ----------------------------------------------------------------------
# Canonical workloads
# ----------------------------------------------------------------------

def _serving_workload() -> Tuple[object, np.ndarray, np.ndarray]:
    """Batch recommendations + a similarity query; returns (engine, ids, scores)."""
    from repro.core.persistence import EmbeddingStore
    from repro.core.recommender import Recommender
    from repro.datasets.zoo import load_dataset

    dataset = load_dataset("taobao", scale=0.1, seed=_CANONICAL_SEED)
    graph = dataset.graph
    rng = as_rng(_CANONICAL_SEED)
    store = EmbeddingStore({
        rel: rng.standard_normal((graph.num_nodes, 16))
        for rel in graph.schema.relationships
    })
    recommender = Recommender(store, graph)
    relation = graph.schema.relationships[0]
    sources = np.flatnonzero(graph.degrees(relation) > 0)[:32]
    per_source = recommender.recommend_batch(sources, relation, k=10)
    similar = recommender.similar_nodes(int(sources[0]), relation, k=10)
    flat = [rec for recs in per_source for rec in recs] + similar
    ids = np.asarray([rec.node for rec in flat], dtype=np.int64)
    scores = np.asarray([rec.score for rec in flat], dtype=np.float64)
    return recommender.engine, ids, scores


def _training_workload() -> Tuple[object, float, Dict[str, np.ndarray]]:
    """One sample/batch/update cycle; returns (trainer, loss, state_dict)."""
    from repro.core.model import HybridGNN, HybridGNNConfig
    from repro.core.trainer import SkipGramTrainer, TrainerConfig
    from repro.datasets import split_edges
    from repro.datasets.zoo import load_dataset

    # scale=0.25/seed=7/rng=8 is the split the trainer tests pin; the
    # 0.1-scale graph is too dense for corruption-based split negatives.
    dataset = load_dataset("taobao", scale=0.25, seed=7)
    split = split_edges(dataset.graph, rng=8)
    model = HybridGNN(
        split.train_graph, dataset.all_schemes(),
        HybridGNNConfig(
            base_dim=8, edge_dim=4, metapath_fanouts=(3, 2, 2, 2, 2, 2),
            exploration_fanout=3, exploration_depth=1,
        ),
        rng=0,
    )
    trainer = SkipGramTrainer(
        model, dataset.all_schemes(), split,
        TrainerConfig(
            epochs=1, batch_size=128, num_walks=1, walk_length=6, window=2,
            max_batches_per_epoch=8,
        ),
        rng=1,
    )
    pairs = trainer.generate_pairs()
    loss = trainer.apply_updates(trainer.make_batches(pairs))
    return trainer, float(loss), model.state_dict()


def measure_alloc_stats() -> Dict[str, StageAllocation]:
    """Per-stage allocation stats of both canonical workloads, merged.

    This is the measurement :func:`refresh_alloc_budgets` sizes the
    committed budget file from, and exactly what the within-budget
    oracles observe.
    """
    with allocation_tracker() as tracker:
        _serving_workload()
        _training_workload()
    return tracker.stats()


def refresh_alloc_budgets(path=None, headroom: float = 2.0) -> Dict[str, int]:
    """Re-measure the canonical workloads and rewrite the budget file.

    Each stage's ceiling is ``headroom`` times the observed temporary
    peak (rounded up to 4 KiB): tight enough that an accidental extra
    full-size materialisation (2x) trips the gate, loose enough that
    allocator jitter does not.  Returns the written ``{stage: bytes}``.
    """
    import json

    from repro.perf import default_budget_path

    path = path if path is not None else default_budget_path()
    stats = measure_alloc_stats()
    budgets = {
        name: int(np.ceil(entry.peak_bytes * headroom / 4096) * 4096)
        for name, entry in sorted(stats.items())
        if name.startswith(_SERVING_PREFIXES + _TRAINING_PREFIXES)
    }
    payload = {
        "note": (
            "Per-stage temporary-allocation ceilings (peak traced bytes above "
            "the stage's entry level, numpy buffers included) for the canonical "
            "verify workloads in repro.verify.alloc_oracles: taobao scale=0.1 "
            f"seed={_CANONICAL_SEED}, 32-source recommend_batch k=10 plus one "
            "similar_nodes query, and one SkipGramTrainer sample/batch/update "
            "cycle on taobao scale=0.25 seed=7 split rng=8 (<=8 batches of "
            f"128). Ceilings are {headroom}x the peak "
            "measured in the reference container, rounded up to 4 KiB. "
            "Checked by `repro verify --suite alloc`; regenerate with "
            "`repro verify --refresh-alloc-budgets` only after confirming a "
            "growth is intended."
        ),
        "measured": {
            name: entry.to_dict() for name, entry in sorted(stats.items())
        },
        "budgets": {
            name: {"peak_bytes": ceiling} for name, ceiling in budgets.items()
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return budgets


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------

def _tracker_selftest(seed: int) -> OracleResult:
    """A planted over-budget stage must be caught; a sane budget must pass."""
    rng = as_rng(seed)
    profiler = StageProfiler()
    size = int(rng.integers(1_000_000, 2_000_000))
    with allocation_tracker() as tracker:
        enabled_inside = allocation_tracking_enabled()
        with profiler.stage("selftest.hog"):
            hog = np.zeros(size)  # ~8-16 MB temporary
            del hog
    stats = tracker.stats()
    flagged = check_budgets(stats, {"selftest.hog": size})  # < 8*size bytes
    passed_generous = check_budgets(stats, {"selftest.hog": 32 * size})
    healthy = (
        enabled_inside
        and not allocation_tracking_enabled()
        and len(flagged) == 1
        and flagged[0].stage == "selftest.hog"
        and flagged[0].peak_bytes >= 8 * size
        and not passed_generous
    )
    return _result(
        "alloc_tracker_selftest", "alloc",
        0.0 if healthy else float("inf"),
        detail=f"planted {8 * size} B temporary flagged against a {size} B "
               "budget and accepted against a generous one",
    )


def _within_budget(
    name: str,
    stats: Dict[str, StageAllocation],
    prefixes: Tuple[str, ...],
    budgets: Dict[str, int],
) -> OracleResult:
    """Measured stages inside their ceilings; budgeted stages all measured."""
    violations = check_budgets(stats, budgets)
    missing = [
        stage for stage in sorted(budgets)
        if stage.startswith(prefixes) and stage not in stats
    ]
    problems = [
        f"{v.stage} peak {v.peak_bytes} B > budget {v.budget_bytes} B "
        f"({v.ratio:.2f}x)"
        for v in violations
    ] + [f"{stage} budgeted but never measured" for stage in missing]
    covered = [s for s in stats if s.startswith(prefixes) and s in budgets]
    return _result(
        name, "alloc",
        0.0 if not problems else float("inf"),
        detail="; ".join(problems) if problems
        else f"{len(covered)} budgeted stages measured, all within ceilings",
    )


def alloc_oracles(seed: int = 0) -> List[OracleResult]:
    """All allocation-sanitizer gates (see module docstring)."""
    results = [_tracker_selftest(seed)]

    budgets = load_budgets()

    # Off-run first, then the tracked run the budgets are checked on.
    _, ids_off, scores_off = _serving_workload()
    with allocation_tracker() as tracker:
        _, ids_on, scores_on = _serving_workload()
    results.append(_within_budget(
        "serving_within_budget", tracker.stats(), _SERVING_PREFIXES, budgets,
    ))
    id_diff = _array_diff(ids_off, ids_on)
    results.append(_result(
        "tracker_bitidentity_serving", "alloc",
        max(id_diff, _array_diff(scores_off, scores_on)),
        detail="recommend_batch + similar_nodes ids and scores, "
               "tracker off vs on",
    ))

    _, loss_off, state_off = _training_workload()
    with allocation_tracker() as tracker:
        _, loss_on, state_on = _training_workload()
    results.append(_within_budget(
        "training_within_budget", tracker.stats(), _TRAINING_PREFIXES, budgets,
    ))
    state_diff = max(
        (_array_diff(state_off[key], state_on[key]) for key in state_off),
        default=0.0,
    )
    if set(state_off) != set(state_on):
        state_diff = float("inf")
    results.append(_result(
        "tracker_bitidentity_training", "alloc",
        max(abs(loss_off - loss_on), state_diff),
        detail="epoch loss and parameter tables, tracker off vs on",
    ))
    return results
