"""Differential oracles for the runtime lock-discipline sanitizer.

``repro verify --suite concurrency`` runs five gates, all bit-exact
(tolerance 1e-6, observed diff must be 0.0):

- **lock_order_selftest** — a deliberately planted A→B / B→A inversion
  must raise :class:`~repro.errors.LockOrderError`, and a non-reentrant
  self-acquire must raise too.  The miswired-canary idiom: a sanitizer
  that cannot catch a planted bug proves nothing by passing elsewhere.
- **write_tracker_selftest** — a planted unguarded concurrent write and
  a planted guard-not-held write must each be flagged, while an exempt
  (hogwild-style) region under the same interleaving must stay silent.
- **service_storm_zero_findings** — the mixed read/write/compaction
  thread storm from the serving suite, run with the sanitizer enabled:
  zero findings, zero lock-order errors, queue drained.
- **sanitizer_bitidentity_service** — a seeded synchronous endpoint
  sequence replayed with the sanitizer off vs on must produce
  bit-identical ids and scores (the wrappers delegate to the same
  ``threading`` primitives; enabling them must not perturb numerics).
- **sanitizer_bitidentity_training** — a seeded ``workers=1``
  ``ParallelSkipGramTrainer.fit`` with the sanitizer off vs on must
  produce bit-identical losses, validation scores and tables.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List

import numpy as np

from repro.core.persistence import EmbeddingStore
from repro.errors import LockOrderError, QueueFullError
from repro.graph import GraphBuilder, GraphSchema
from repro.serving import RecommendService, ServiceConfig
from repro.utils.concurrency import (
    checked_lock,
    checked_rlock,
    concurrency_findings,
    lock_sanitizer,
    register_shared_region,
    reset_concurrency_state,
)
from repro.utils.rng import as_rng
from repro.verify.oracles import OracleResult, _result

__all__ = ["concurrency_oracles"]


def _tiny_service(seed: int, **overrides) -> RecommendService:
    schema = GraphSchema(["user", "item"], ["view", "buy"])
    builder = GraphBuilder(schema)
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    graph = builder.build()
    rng = as_rng(seed)
    store = EmbeddingStore({
        rel: rng.standard_normal((graph.num_nodes, 8))
        for rel in graph.schema.relationships
    })
    defaults = dict(flush_interval=0.0, compaction_threshold=4, max_queue=64)
    defaults.update(overrides)
    return RecommendService(store, graph, config=ServiceConfig(**defaults))


def _lock_order_selftest() -> OracleResult:
    """Planted inversion and self-deadlock must both raise."""
    reset_concurrency_state()
    lock_a = checked_lock("selftest.A")
    lock_b = checked_rlock("selftest.B")
    caught_inversion = False
    caught_self = False
    try:
        with lock_sanitizer():
            with lock_a:
                with lock_b:
                    pass
            try:
                with lock_b:
                    with lock_a:
                        pass
            except LockOrderError:
                caught_inversion = True
            try:
                with lock_a:
                    with lock_a:
                        pass
            except LockOrderError:
                caught_self = True
    finally:
        reset_concurrency_state()
    diff = 0.0 if (caught_inversion and caught_self) else float("inf")
    return _result(
        "lock_order_selftest", "concurrency", diff,
        detail="planted A->B/B->A inversion and non-reentrant "
               "self-acquire both raised LockOrderError",
    )


def _write_tracker_selftest() -> OracleResult:
    """Planted violations flagged; exempt hogwild-style region silent."""
    reset_concurrency_state()
    racy = register_shared_region("selftest.racy")
    guarded = register_shared_region(
        "selftest.guarded", guard="selftest.guard-lock"
    )
    exempt = register_shared_region(
        "selftest.exempt", exempt=True, reason="hogwild-style by design"
    )
    barrier = threading.Barrier(2, timeout=10.0)

    def overlap(region):
        def writer():
            with region:
                barrier.wait()
                barrier.wait()
        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    try:
        with lock_sanitizer():
            overlap(racy)
            with guarded:
                pass
            overlap(exempt)
            kinds = {(f.kind, f.region) for f in concurrency_findings()}
    finally:
        reset_concurrency_state()
    expected = {
        ("concurrent-write", "selftest.racy"),
        ("unguarded-write", "selftest.guarded"),
    }
    ok = expected <= kinds and not any(
        region == "selftest.exempt" for _, region in kinds
    )
    return _result(
        "write_tracker_selftest", "concurrency",
        0.0 if ok else float("inf"),
        detail=f"flagged {sorted(kinds)}; exempt region silent",
    )


def _service_storm(seed: int) -> OracleResult:
    """The mixed thread storm, sanitized: zero findings, zero errors."""
    reset_concurrency_state()
    service = _tiny_service(
        seed, flush_interval=0.001, max_batch=8, max_queue=10_000,
        compaction_threshold=6,
    )
    errors: List[BaseException] = []

    def worker(i: int) -> None:
        try:
            roll = i % 5
            if roll < 2:
                ids, scores = service.recommend(i % 3, "view", k=3)
                assert len(ids) == len(scores)
            elif roll < 3:
                service.similar(3 + i % 4, "view", k=3)
            else:
                service.feedback(i % 3, 3 + (i * 7) % 4, "view")
        except QueueFullError:
            pass
        except BaseException as error:
            errors.append(error)

    try:
        with lock_sanitizer():
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(worker, range(120)))
            findings = concurrency_findings()
    finally:
        reset_concurrency_state()
    depth = service.queue_depth
    diff = float(len(findings) + len(errors) + depth)
    detail = (
        f"120 mixed requests, 8 threads: {len(findings)} finding(s), "
        f"{len(errors)} error(s), queue depth {depth}"
    )
    if findings:
        detail += f"; first: {findings[0].to_dict()}"
    if errors:
        detail += f"; first error: {errors[0]!r}"
    return _result("service_storm_zero_findings", "concurrency", diff,
                   detail=detail)


def _replay_endpoints(service: RecommendService) -> List[np.ndarray]:
    """A deterministic synchronous endpoint sequence; returns all outputs."""
    out: List[np.ndarray] = []
    for i in range(6):
        service.feedback(i % 3, 3 + (i * 5) % 4, "buy")
    for node in range(3):
        ids, scores = service.recommend(node, "view", k=4)
        out.extend([ids, scores])
    for node in (3, 4, 5):
        ids, scores = service.similar(node, "view", k=3)
        out.extend([ids, scores])
    batch = service.recommend_many([0, 1, 2], "buy", k=3)
    for ids, scores in batch:
        out.extend([ids, scores])
    return out


def _service_bitidentity(seed: int) -> OracleResult:
    plain = _replay_endpoints(_tiny_service(seed))
    reset_concurrency_state()
    try:
        with lock_sanitizer():
            sanitized = _replay_endpoints(_tiny_service(seed))
            findings = concurrency_findings()
    finally:
        reset_concurrency_state()
    diff = 0.0
    if len(plain) != len(sanitized):
        diff = float("inf")
    else:
        for a, b in zip(plain, sanitized):
            if a.shape != b.shape or a.dtype != b.dtype:
                diff = float("inf")
                break
            if a.size:
                diff = max(diff, float(np.max(np.abs(
                    np.asarray(a, dtype=np.float64)
                    - np.asarray(b, dtype=np.float64)
                ))))
    diff = max(diff, float(len(findings)))
    return _result(
        "sanitizer_bitidentity_service", "concurrency", diff,
        detail=f"{len(plain)} output arrays (feedback/recommend/similar/"
               f"batch) off vs on; {len(findings)} finding(s)",
    )


def _training_bitidentity(seed: int) -> OracleResult:
    from repro.datasets import load_dataset, split_edges
    from repro.train import ParallelSkipGramTrainer, ParallelTrainerConfig

    dataset = load_dataset("taobao", scale=0.25, seed=7)
    split = split_edges(dataset.graph, rng=8)
    config = ParallelTrainerConfig(
        workers=1, dim=8, epochs=2, batch_size=2048, num_walks=1,
        walk_length=6, window=2,
    )

    def fit():
        trainer = ParallelSkipGramTrainer(
            dataset.all_schemes(), split, config, rng=seed
        )
        history = trainer.fit()
        return history, trainer.state_dict()

    hist_plain, state_plain = fit()
    reset_concurrency_state()
    try:
        with lock_sanitizer():
            hist_san, state_san = fit()
    finally:
        reset_concurrency_state()
    diff = 0.0
    if hist_plain.losses != hist_san.losses or \
            hist_plain.val_scores != hist_san.val_scores or \
            set(state_plain) != set(state_san):
        diff = float("inf")
    else:
        for name in state_plain:
            if state_plain[name].size:
                diff = max(diff, float(np.max(np.abs(
                    state_plain[name] - state_san[name]
                ))))
    return _result(
        "sanitizer_bitidentity_training", "concurrency", diff,
        detail=f"workers=1 fit off vs on ({len(hist_plain.losses)} epochs, "
               "losses+val+tables)",
    )


def concurrency_oracles(seed: int = 0) -> List[OracleResult]:
    """The ``repro verify --suite concurrency`` gate set."""
    return [
        _lock_order_selftest(),
        _write_tracker_selftest(),
        _service_storm(seed),
        _service_bitidentity(seed),
        _training_bitidentity(seed),
    ]
