"""Golden regression corpus: seeded end-to-end metric snapshots.

Every entry is one ``(dataset-alike, model)`` training run on the smoke
profile with a fixed seed, snapshotting the test link-prediction metrics
(ROC-AUC / PR-AUC / F1, in %, overall and per relationship) to a JSON file
under ``tests/golden/``.  The whole pipeline is seeded numpy, so reruns in
the same environment are bit-identical; the committed tolerance (0.05
percentage points by default) only absorbs cross-platform libm drift.

Workflow:

- ``python -m repro verify --suite golden`` recomputes every committed
  entry and fails on drift beyond tolerance — run it before landing any PR
  that touches sampling, training or evaluation;
- ``python -m repro verify --refresh-golden`` re-snapshots after an
  *intentional* metrics change; commit the diff with an explanation.

The training recipe mirrors ``python -m repro train`` exactly (same profile
scale, same ``seed + 10_000`` split convention), so a golden entry is a
reproducible CLI run, not a bespoke harness.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "GoldenEntry",
    "GoldenCheck",
    "GOLDEN_MODELS",
    "SCALE_BENCH_DATASETS",
    "DEFAULT_SEED",
    "DEFAULT_TOLERANCE",
    "golden_dir",
    "golden_targets",
    "entry_path",
    "load_entry",
    "compute_entry",
    "refresh_golden",
    "verify_golden",
    "format_golden_table",
]

#: HybridGNN plus three baselines spanning the model families (shallow
#: walk-based, edge-sampling, full-batch GNN) — fast enough for CI while
#: covering every training code path.
GOLDEN_MODELS: Tuple[str, ...] = ("HybridGNN", "DeepWalk", "LINE", "GCN")

#: Benchmark-scale alikes excluded from the default golden grid: even at
#: the smoke profile they are hundreds of thousands of nodes, and the
#: sharded trainer they exist for is gated by the ``parallel`` verify
#: suite and ``benchmarks/bench_training.py`` instead.
SCALE_BENCH_DATASETS: Tuple[str, ...] = ("taobao-xl",)

DEFAULT_SEED = 0
DEFAULT_PROFILE = "smoke"
#: Percentage points; reruns are bit-identical in one environment, the
#: tolerance absorbs cross-platform floating-point differences only.
DEFAULT_TOLERANCE = 0.05


@dataclass
class GoldenEntry:
    """One committed metric snapshot."""

    dataset: str
    model: str
    profile: str
    scale: float
    seed: int
    tolerance: float
    metrics: Dict[str, Dict] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "GoldenEntry":
        return cls(**json.loads(text))


@dataclass
class GoldenCheck:
    """Result of re-running one golden entry."""

    dataset: str
    model: str
    status: str  # "ok" | "drift" | "missing"
    max_abs_diff: float = 0.0
    tolerance: float = DEFAULT_TOLERANCE
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict:
        return {**asdict(self), "passed": self.passed}


# ----------------------------------------------------------------------
# Corpus location and enumeration
# ----------------------------------------------------------------------
def golden_dir(directory: Optional[os.PathLike] = None) -> Path:
    """Resolve the corpus directory.

    Priority: explicit argument, ``$REPRO_GOLDEN_DIR``, ``tests/golden``
    next to the repository's ``src`` tree, then ``./tests/golden``.
    """
    if directory is not None:
        return Path(directory)
    env = os.environ.get("REPRO_GOLDEN_DIR")
    if env:
        return Path(env)
    repo_candidate = Path(__file__).resolve().parents[3] / "tests" / "golden"
    if repo_candidate.parent.is_dir():
        return repo_candidate
    return Path.cwd() / "tests" / "golden"


def golden_targets(
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> List[Tuple[str, str]]:
    """The (dataset, model) grid the corpus covers."""
    from repro.datasets import available_datasets

    datasets = list(datasets) if datasets else [
        name for name in available_datasets()
        if name not in SCALE_BENCH_DATASETS
    ]
    models = list(models) if models else list(GOLDEN_MODELS)
    return [(dataset, model) for dataset in datasets for model in models]


def entry_path(dataset: str, model: str,
               directory: Optional[os.PathLike] = None) -> Path:
    return golden_dir(directory) / f"{dataset}__{model}.json"


def load_entry(dataset: str, model: str,
               directory: Optional[os.PathLike] = None) -> Optional[GoldenEntry]:
    path = entry_path(dataset, model, directory)
    if not path.is_file():
        return None
    return GoldenEntry.from_json(path.read_text())


# ----------------------------------------------------------------------
# Computation
# ----------------------------------------------------------------------
def _round_metrics(metrics: Dict[str, float]) -> Dict[str, float]:
    return {key: round(float(value), 6) for key, value in metrics.items()}


def compute_entry(
    dataset: str,
    model: str,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GoldenEntry:
    """Train ``model`` on ``dataset`` exactly like ``repro train`` and snapshot."""
    from repro.datasets import load_dataset, split_edges
    from repro.eval import evaluate_link_prediction
    from repro.experiments import get_profile, make_model

    prof = get_profile(profile)
    data = load_dataset(dataset, scale=prof.scale, seed=seed)
    split = split_edges(data.graph, rng=seed + 10_000)
    trained = make_model(model, prof, seed)
    trained.fit(data, split)
    link = evaluate_link_prediction(trained, split.test)
    return GoldenEntry(
        dataset=dataset,
        model=model,
        profile=prof.name,
        scale=prof.scale,
        seed=seed,
        tolerance=tolerance,
        metrics={
            "overall": _round_metrics(link.overall),
            "per_relation": {
                relation: _round_metrics(values)
                for relation, values in link.per_relation.items()
            },
        },
    )


def _metrics_diff(a: Dict[str, Dict], b: Dict[str, Dict]) -> Tuple[float, str]:
    """Largest absolute metric difference and where it occurred."""
    worst, where = 0.0, ""
    flat_a = dict(a.get("overall", {}))
    flat_b = dict(b.get("overall", {}))
    for relation, values in a.get("per_relation", {}).items():
        for key, value in values.items():
            flat_a[f"{relation}/{key}"] = value
    for relation, values in b.get("per_relation", {}).items():
        for key, value in values.items():
            flat_b[f"{relation}/{key}"] = value
    if set(flat_a) != set(flat_b):
        missing = sorted(set(flat_a) ^ set(flat_b))
        return float("inf"), f"metric keys differ: {missing}"
    for key, value in flat_a.items():
        diff = abs(value - flat_b[key])
        if diff > worst:
            worst, where = diff, key
    return worst, where


# ----------------------------------------------------------------------
# Refresh and verify
# ----------------------------------------------------------------------
def refresh_golden(
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    directory: Optional[os.PathLike] = None,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_SEED,
    verbose: bool = False,
) -> List[GoldenEntry]:
    """Recompute and write the selected corpus entries."""
    target_dir = golden_dir(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for dataset, model in golden_targets(datasets, models):
        if verbose:
            print(f"refreshing {dataset} x {model} ...", flush=True)
        entry = compute_entry(dataset, model, profile=profile, seed=seed)
        entry_path(dataset, model, target_dir).write_text(entry.to_json())
        entries.append(entry)
    return entries


def verify_golden(
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    directory: Optional[os.PathLike] = None,
    verbose: bool = False,
) -> List[GoldenCheck]:
    """Re-run the selected entries and compare against the committed corpus."""
    checks = []
    for dataset, model in golden_targets(datasets, models):
        stored = load_entry(dataset, model, directory)
        if stored is None:
            checks.append(GoldenCheck(
                dataset=dataset, model=model, status="missing",
                max_abs_diff=float("inf"),
                detail="no committed entry; run --refresh-golden",
            ))
            continue
        if verbose:
            print(f"verifying {dataset} x {model} ...", flush=True)
        fresh = compute_entry(
            dataset, model, profile=stored.profile, seed=stored.seed,
            tolerance=stored.tolerance,
        )
        diff, where = _metrics_diff(stored.metrics, fresh.metrics)
        status = "ok" if diff <= stored.tolerance else "drift"
        checks.append(GoldenCheck(
            dataset=dataset, model=model, status=status, max_abs_diff=diff,
            tolerance=stored.tolerance,
            detail=f"largest drift at {where}" if where else "",
        ))
    return checks


def format_golden_table(checks: Sequence[GoldenCheck]) -> str:
    lines = [
        f"{'dataset':<10} {'model':<10} {'max drift (pp)':>15}  status",
        "-" * 48,
    ]
    for check in checks:
        lines.append(
            f"{check.dataset:<10} {check.model:<10} "
            f"{check.max_abs_diff:>15.4f}  {check.status}"
        )
    failed = [c for c in checks if not c.passed]
    lines.append("-" * 48)
    lines.append(
        f"{len(checks) - len(failed)}/{len(checks)} golden entries ok"
        + (f"; drifted/missing: "
           f"{', '.join(f'{c.dataset}x{c.model}' for c in failed)}" if failed else "")
    )
    return "\n".join(lines)
