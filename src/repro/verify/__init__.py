"""Correctness verification subsystem (see TESTING.md).

Three pillars:

- :mod:`repro.verify.gradcheck` — numeric gradient checking with relative
  steps, subset sampling and a registry sweeping every public op/module;
- :mod:`repro.verify.oracles` — differential oracles pitting every fast
  path against an independent slow reimplementation;
- :mod:`repro.verify.golden` — seeded end-to-end metric snapshots guarding
  against silent result drift.

Driven by ``python -m repro verify``.
"""

from repro.verify.golden import (
    GOLDEN_MODELS,
    GoldenCheck,
    GoldenEntry,
    compute_entry,
    format_golden_table,
    golden_dir,
    golden_targets,
    refresh_golden,
    verify_golden,
)
from repro.verify.gradcheck import (
    GradCheckCase,
    GradCheckReport,
    TensorCheck,
    check_gradients,
    check_gradients_report,
    covered_targets,
    freeze_rngs,
    gradcheck_cases,
    numeric_gradient,
    registry_coverage,
    required_targets,
    run_gradcheck_suite,
    uncovered_targets,
)
from repro.verify.oracles import (
    OracleResult,
    RECALL_TOLERANCE,
    format_oracle_table,
    index_oracles,
    metric_oracles,
    model_oracles,
    run_oracle_suite,
    sampling_oracles,
    service_oracles,
    serving_oracles,
)
from repro.verify.alloc_oracles import (
    alloc_oracles,
    measure_alloc_stats,
    refresh_alloc_budgets,
)
from repro.verify.concurrency_oracles import concurrency_oracles
from repro.verify.parallel_oracles import AUC_TOLERANCE, parallel_oracles

__all__ = [
    "GradCheckCase",
    "GradCheckReport",
    "TensorCheck",
    "check_gradients",
    "check_gradients_report",
    "covered_targets",
    "freeze_rngs",
    "gradcheck_cases",
    "numeric_gradient",
    "registry_coverage",
    "required_targets",
    "run_gradcheck_suite",
    "uncovered_targets",
    "OracleResult",
    "RECALL_TOLERANCE",
    "AUC_TOLERANCE",
    "alloc_oracles",
    "measure_alloc_stats",
    "refresh_alloc_budgets",
    "concurrency_oracles",
    "parallel_oracles",
    "format_oracle_table",
    "index_oracles",
    "metric_oracles",
    "model_oracles",
    "run_oracle_suite",
    "sampling_oracles",
    "service_oracles",
    "serving_oracles",
    "GOLDEN_MODELS",
    "GoldenCheck",
    "GoldenEntry",
    "compute_entry",
    "format_golden_table",
    "golden_dir",
    "golden_targets",
    "refresh_golden",
    "verify_golden",
]
