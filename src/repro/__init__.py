"""HybridGNN reproduction: hybrid representation learning for recommendation
in multiplex heterogeneous networks (Gu et al., ICDE 2022).

Subpackages
-----------
``repro.nn``
    Numpy autograd engine and neural-network layers.
``repro.graph``
    Multiplex heterogeneous graph substrate (schemas, metapaths, CSR store).
``repro.sampling``
    Walks, randomized inter-relationship exploration, neighbor and negative
    samplers.
``repro.datasets``
    Synthetic generators + the five dataset-alikes and edge splits.
``repro.core``
    HybridGNN: hybrid aggregation flows, hierarchical attention, trainer.
``repro.baselines``
    The nine compared models, from DeepWalk to GATNE.
``repro.eval``
    Metrics and evaluation harnesses (link prediction, top-K, significance).
``repro.perf``
    Wall-time instrumentation (scoped timers, stage profiling).
``repro.experiments``
    Table/figure reproduction entry points.

Quickstart
----------
>>> from repro.datasets import load_dataset, split_edges
>>> from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
>>> from repro.eval import evaluate_link_prediction
>>> ds = load_dataset("taobao", scale=0.3, seed=0)
>>> split = split_edges(ds.graph, rng=0)
>>> model = HybridGNN(split.train_graph, ds.all_schemes(), HybridGNNConfig(), rng=0)
>>> trainer = SkipGramTrainer(model, ds.all_schemes(), split, TrainerConfig(epochs=3), rng=0)
>>> _ = trainer.fit()
>>> report = evaluate_link_prediction(model, split.test)
"""

from repro.errors import (
    AnomalyError,
    AutogradError,
    DatasetError,
    EvaluationError,
    GraphError,
    MetapathError,
    ReproError,
    SamplingError,
    SanitizerError,
    SchemaError,
    ShapeError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SchemaError",
    "GraphError",
    "MetapathError",
    "SamplingError",
    "ShapeError",
    "AutogradError",
    "TrainingError",
    "EvaluationError",
    "DatasetError",
    "SanitizerError",
    "AnomalyError",
    "run_lint",
]


def __getattr__(name: str):
    # PEP 562 lazy export: `repro.run_lint` reaches the project linter
    # (repro.lint, the *code* analyzer — distinct from repro.analysis, the
    # embedding/result analyzer) without importing it on package import.
    if name == "run_lint":
        from repro.lint import run_lint

        return run_lint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
