"""Walker's alias method: O(1) draws from a fixed discrete distribution.

Skip-gram training draws millions of negatives from the unigram^0.75
distribution; ``numpy.random.Generator.choice(p=...)`` costs O(n) per call
because it re-scans the probability vector.  The alias method pays O(n)
once to build two tables and then answers each draw with one uniform
integer and one uniform float.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.utils.rng import SeedLike, as_rng


class AliasTable:
    """Preprocessed discrete distribution supporting O(1) sampling.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights (normalised internally).
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise SamplingError("weights must be a non-empty 1-d array")
        if np.any(weights < 0):
            raise SamplingError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise SamplingError("weights must not all be zero")

        n = len(weights)
        self.n = n
        probs = weights * (n / total)
        # Partition into under/over-full buckets with one vectorised
        # comparison; the sequential pairing below then runs on plain Python
        # lists, whose scalar pops/appends beat per-element numpy indexing.
        scaled = probs.tolist()
        small = np.flatnonzero(probs < 1.0).tolist()
        large = np.flatnonzero(probs >= 1.0).tolist()
        prob = [1.0] * n
        alias = list(range(n))
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            remainder = scaled[l] - (1.0 - scaled[s])
            scaled[l] = remainder
            if remainder < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftover buckets (numerical stragglers) keep prob 1 / self-alias.
        self.prob = np.asarray(prob)
        self.alias = np.asarray(alias, dtype=np.int64)

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` indices in O(size)."""
        if size <= 0:
            raise SamplingError(f"size must be positive, got {size}")
        rng = as_rng(rng)
        columns = rng.integers(0, self.n, size=size)
        coins = rng.random(size)
        use_alias = coins >= self.prob[columns]
        out = columns.copy()
        out[use_alias] = self.alias[columns[use_alias]]
        return out

    def probabilities(self) -> np.ndarray:
        """The distribution this table samples from (for testing)."""
        probs = np.zeros(self.n)
        np.add.at(probs, np.arange(self.n), self.prob)
        np.add.at(probs, self.alias, 1.0 - self.prob)
        return probs / self.n
