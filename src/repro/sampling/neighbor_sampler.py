"""Metapath-guided neighbor sampling (Def. 5 and Eq. 3).

Given a metapath scheme P = o_0 -r_1-> o_1 ... -r_K-> o_K and a batch of
o_0-typed nodes, :class:`MetapathNeighborSampler` draws fixed-size
neighborhoods level by level:

    layer 0: the batch itself                        shape (B,)
    layer 1: N^1_P — fanout[0] typed neighbors each   shape (B, f1)
    layer k: N^k_P                                   shape (B, f1*...*fk)

Fixed fanouts keep every batch a dense tensor, which is what makes the
recursive aggregation of Eq. 3 a handful of matrix multiplies instead of a
per-node loop.  A node with no valid typed neighbor contributes itself,
preserving shapes (the aggregator then mixes in self-information only).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import MetapathError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.sampling.adjacency import TypedAdjacencyCache, sample_uniform_neighbors
from repro.utils.rng import SeedLike, as_rng


class MetapathNeighborSampler:
    """Samples metapath-guided neighborhoods for batches of start nodes."""

    def __init__(self, graph: MultiplexHeteroGraph, scheme: MetapathScheme,
                 fanouts: Sequence[int], rng: SeedLike = None,
                 adjacency: Optional[TypedAdjacencyCache] = None):
        scheme.validate(graph.schema)
        if len(fanouts) != len(scheme):
            raise MetapathError(
                f"scheme {scheme.describe()} has {len(scheme)} hops but "
                f"{len(fanouts)} fanouts were given"
            )
        if any(f <= 0 for f in fanouts):
            raise MetapathError(f"fanouts must be positive, got {list(fanouts)}")
        self.graph = graph
        self.scheme = scheme
        self.fanouts = list(fanouts)
        self._rng = as_rng(rng)
        self._adjacency = adjacency or TypedAdjacencyCache(graph)

    def sample_layers(self, nodes: np.ndarray) -> List[np.ndarray]:
        """Layered neighborhoods for ``nodes`` (see module docstring)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        layers = [nodes]
        frontier = nodes
        for hop, fanout in enumerate(self.fanouts):
            relation = self.scheme.relations[hop]
            target_type = self.scheme.node_types[hop + 1]
            indptr, indices = self._adjacency.view(relation, target_type)
            sampled = sample_uniform_neighbors(
                indptr, indices, frontier.reshape(-1), fanout, self._rng
            )
            frontier = sampled.reshape(len(nodes), -1)
            layers.append(frontier)
        return layers

    def guided_neighbors(self, node: int, step: int) -> np.ndarray:
        """Exact N^step_P(node): all metapath-guided neighbors (no sampling).

        Exponential in path length; intended for tests and small-graph
        inspection, not training.
        """
        if not 0 <= step <= len(self.scheme):
            raise MetapathError(f"step must be in [0, {len(self.scheme)}], got {step}")
        frontier = {int(node)}
        for hop in range(step):
            relation = self.scheme.relations[hop]
            target_type = self.scheme.node_types[hop + 1]
            code = self.graph.schema.node_type_index(target_type)
            next_frontier = set()
            for current in frontier:
                for neighbor in self.graph.neighbors(current, relation):
                    if self.graph.node_type_codes[neighbor] == code:
                        next_frontier.add(int(neighbor))
            frontier = next_frontier
            if not frontier:
                break
        return np.asarray(sorted(frontier), dtype=np.int64)
