"""Metapath-based random walks used for training (Sect. III-E, Eq. 12).

For every relationship r the paper defines the walk scheme

    phi(v_0) -r-> phi(v_1) -r-> ... -r-> phi(v_n)

and the transition T(v_{t+1} | v_t) is uniform over the neighbors of v_t
under r whose type matches the next type on the scheme.  The walker cycles
through the scheme's node types (a scheme like U-I-U continues U-I-U-I-U…
for walks longer than the scheme).

All starts of a round walk concurrently through the batched frontier engine
(:mod:`repro.sampling.frontier`): the typed CSR view for a walk position is
looked up once and advances every alive walker in one vectorised step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MetapathError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.sampling.adjacency import TypedAdjacencyCache, step_uniform
from repro.sampling.frontier import concat_matrices, matrix_to_walks, run_frontier
from repro.utils.rng import SeedLike, as_rng


class MetapathWalker:
    """Walks guided by one intra-relationship metapath scheme.

    Parameters
    ----------
    graph:
        The multiplex heterogeneous graph.
    scheme:
        An intra-relationship scheme; its single relation defines the
        relationship-specific subgraph g_r the walk stays inside.
    """

    def __init__(self, graph: MultiplexHeteroGraph, scheme: MetapathScheme,
                 rng: SeedLike = None,
                 adjacency: Optional[TypedAdjacencyCache] = None):
        scheme.validate(graph.schema)
        if not scheme.is_intra_relationship:
            raise MetapathError(
                "training walks use intra-relationship schemes; "
                f"got {scheme.describe()}"
            )
        self.graph = graph
        self.scheme = scheme
        self.relation = scheme.relations[0]
        self._rng = as_rng(rng)
        self._adjacency = adjacency or TypedAdjacencyCache(graph)

    def _type_at(self, position: int) -> str:
        """Node type at walk position ``position`` under cyclic extension."""
        cycle = self.scheme.node_types[:-1]  # last type == first for symmetric schemes
        if self.scheme.node_types[0] == self.scheme.node_types[-1]:
            return cycle[position % len(cycle)]
        # Asymmetric scheme: bounce back and forth (U-I-A-I-U style extension).
        full = list(self.scheme.node_types)
        period = 2 * (len(full) - 1)
        offset = position % period
        if offset >= len(full):
            offset = period - offset
        return full[offset]

    # ------------------------------------------------------------------
    def _check_starts(self, starts: np.ndarray) -> None:
        codes = self.graph.node_type_codes[starts]
        start_code = self.graph.schema.node_type_index(self.scheme.start_type)
        if np.any(codes != start_code):
            bad = int(starts[np.flatnonzero(codes != start_code)[0]])
            raise MetapathError(
                f"walk must start at a {self.scheme.start_type!r} node, "
                f"got {self.graph.node_type(bad)!r}"
            )

    def _step(self, nodes: np.ndarray, position: int,
              walker_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        indptr, indices = self._adjacency.view(self.relation, self._type_at(position))
        return step_uniform(indptr, indices, nodes, self._rng)

    def walk_matrix(self, starts: np.ndarray, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Metapath-guided walks from ``starts`` as a padded ``(W, L)`` matrix.

        All starts must have the scheme's start type; rows stop (padding
        with -1) at nodes with no valid typed neighbor.
        """
        starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        self._check_starts(starts)
        return run_frontier(starts, length, self._step)

    # ------------------------------------------------------------------
    def walk(self, start: int, length: int) -> List[int]:
        """One metapath-guided walk of at most ``length`` nodes.

        ``start`` must have the scheme's start type; the walk stops early at
        a node with no valid typed neighbor.
        """
        matrix, lengths = self.walk_matrix(np.asarray([start]), length)
        return matrix[0, : lengths[0]].tolist()

    def walks(self, num_walks: int, length: int,
              starts: Optional[np.ndarray] = None) -> List[List[int]]:
        """``num_walks`` walks from each start node of the correct type."""
        matrix, lengths = self.walks_matrix(num_walks, length, starts)
        return matrix_to_walks(matrix, lengths)

    def walks_matrix(self, num_walks: int, length: int,
                     starts: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`walks` but returns one padded ``(W, L)`` matrix."""
        if starts is None:
            starts = self.graph.nodes_of_type(self.scheme.start_type)
        starts = np.asarray(starts)
        # Fixed-width blocks per round (run_frontier always pads to
        # max(length, 1)): preallocate the pooled output and fill slices,
        # keeping the RNG call order of the old concatenate-of-parts form.
        per_round = starts.shape[0]
        matrix = np.empty((num_walks * per_round, max(length, 1)), dtype=np.int64)
        lengths = np.empty(num_walks * per_round, dtype=np.int64)
        for walk_round in range(num_walks):
            block = slice(walk_round * per_round, (walk_round + 1) * per_round)
            matrix[block], lengths[block] = self.walk_matrix(
                self._rng.permutation(starts), length
            )
        return matrix, lengths

    # ------------------------------------------------------------------
    # Scalar reference path (pre-frontier implementation) for equivalence
    # tests and benchmarks.
    # ------------------------------------------------------------------
    def _reference_walk(self, start: int, length: int) -> List[int]:
        self._check_starts(np.asarray([start], dtype=np.int64))
        path = [int(start)]
        current = np.asarray([start], dtype=np.int64)
        for position in range(1, length):
            next_type = self._type_at(position)
            indptr, indices = self._adjacency.view(self.relation, next_type)
            current, moved = step_uniform(indptr, indices, current, self._rng)
            if not moved[0]:
                break
            path.append(int(current[0]))
        return path

    def _reference_walks(self, num_walks: int, length: int,
                         starts: Optional[np.ndarray] = None) -> List[List[int]]:
        if starts is None:
            starts = self.graph.nodes_of_type(self.scheme.start_type)
        result: List[List[int]] = []
        for _ in range(num_walks):
            shuffled = self._rng.permutation(starts)
            for start in shuffled:
                result.append(self._reference_walk(int(start), length))
        return result


def relationship_walk_matrix(
    graph: MultiplexHeteroGraph,
    schemes: Sequence[MetapathScheme],
    num_walks: int,
    length: int,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pooled walks from several schemes as one padded ``(W, L)`` matrix.

    This is the batched form of :func:`relationship_walks` (one
    relationship's PS_{r} set) and the trainer's fast path.
    """
    rng = as_rng(rng)
    adjacency = None
    parts = []
    for scheme in schemes:
        walker = MetapathWalker(graph, scheme, rng=rng, adjacency=adjacency)
        adjacency = walker._adjacency  # share the typed-CSR cache across schemes
        parts.append(walker.walks_matrix(num_walks, length))
    return concat_matrices(parts)


def relationship_walks(
    graph: MultiplexHeteroGraph,
    schemes: Sequence[MetapathScheme],
    num_walks: int,
    length: int,
    rng: SeedLike = None,
) -> List[List[int]]:
    """Pool walks from several schemes (one relationship's PS_{r} set)."""
    matrix, lengths = relationship_walk_matrix(graph, schemes, num_walks, length, rng)
    return matrix_to_walks(matrix, lengths)
