"""node2vec's second-order biased random walk (Grover & Leskovec, 2016).

The transition from ``prev -> current`` to the next node x is reweighted by

    1/p  if x == prev           (return)
    1    if x is a neighbor of prev  (BFS-like)
    1/q  otherwise              (DFS-like)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph
from repro.sampling.random_walk import _merged_csr
from repro.utils.rng import SeedLike, as_rng


class Node2VecWalker:
    """Biased walker over the type-erased graph.

    Parameters
    ----------
    p:
        Return parameter; larger p discourages immediately revisiting the
        previous node.
    q:
        In-out parameter; q > 1 biases towards BFS, q < 1 towards DFS.
    """

    def __init__(self, graph: MultiplexHeteroGraph, p: float = 1.0, q: float = 1.0,
                 rng: SeedLike = None):
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.graph = graph
        self.p = p
        self.q = q
        self._rng = as_rng(rng)
        self._indptr, self._indices = _merged_csr(graph)
        # Per-node sorted neighbor arrays for O(log d) membership tests.
        self._sorted_neighbors = {}

    def _neighbors(self, node: int) -> np.ndarray:
        return self._indices[self._indptr[node]: self._indptr[node + 1]]

    def _neighbor_set(self, node: int) -> np.ndarray:
        cached = self._sorted_neighbors.get(node)
        if cached is None:
            cached = np.sort(self._neighbors(node))
            self._sorted_neighbors[node] = cached
        return cached

    def walk(self, start: int, length: int) -> List[int]:
        """One biased walk of at most ``length`` nodes."""
        path = [int(start)]
        if length <= 1:
            return path
        first = self._neighbors(start)
        if len(first) == 0:
            return path
        path.append(int(first[self._rng.integers(len(first))]))
        while len(path) < length:
            prev, current = path[-2], path[-1]
            candidates = self._neighbors(current)
            if len(candidates) == 0:
                break
            prev_neighbors = self._neighbor_set(prev)
            weights = np.ones(len(candidates))
            weights[candidates == prev] = 1.0 / self.p
            # Membership of each candidate in prev's (sorted) neighbor list.
            pos = np.searchsorted(prev_neighbors, candidates)
            found = np.zeros(len(candidates), dtype=bool)
            in_range = pos < len(prev_neighbors)
            found[in_range] = prev_neighbors[pos[in_range]] == candidates[in_range]
            far = ~found & (candidates != prev)
            weights[far] = 1.0 / self.q
            weights /= weights.sum()
            path.append(int(self._rng.choice(candidates, p=weights)))
        return path

    def walks(self, num_walks: int, length: int,
              nodes: Optional[np.ndarray] = None) -> List[List[int]]:
        if nodes is None:
            nodes = np.arange(self.graph.num_nodes)
        result: List[List[int]] = []
        for _ in range(num_walks):
            shuffled = self._rng.permutation(nodes)
            for start in shuffled:
                result.append(self.walk(int(start), length))
        return result
