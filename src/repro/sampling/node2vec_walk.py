"""node2vec's second-order biased random walk (Grover & Leskovec, 2016).

The transition from ``prev -> current`` to the next node x is reweighted by

    1/p  if x == prev           (return)
    1    if x is a neighbor of prev  (BFS-like)
    1/q  otherwise              (DFS-like)

The batched path advances the whole frontier per position: candidate lists
of all alive walkers are flattened into one ragged array, the
BFS-membership test runs as one ``searchsorted`` against a global sorted
edge-key array, and the per-walker weighted draw is a segmented
cumulative-sum inversion.  Frontiers smaller than ``alias_threshold`` fall
back to cached per-``(prev, current)`` :class:`~repro.sampling.alias.AliasTable`
draws, where numpy batch overhead exceeds the O(1) alias lookup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph
from repro.sampling.adjacency import step_uniform
from repro.sampling.alias import AliasTable
from repro.sampling.frontier import matrix_to_walks, run_frontier
from repro.sampling.random_walk import _merged_csr
from repro.utils.rng import SeedLike, as_rng

_MAX_ALIAS_CACHE = 100_000


class Node2VecWalker:
    """Biased walker over the type-erased graph.

    Parameters
    ----------
    p:
        Return parameter; larger p discourages immediately revisiting the
        previous node.
    q:
        In-out parameter; q > 1 biases towards BFS, q < 1 towards DFS.
    alias_threshold:
        Frontier size below which the batched step falls back to cached
        alias tables instead of the vectorised segmented draw.
    """

    def __init__(self, graph: MultiplexHeteroGraph, p: float = 1.0, q: float = 1.0,
                 rng: SeedLike = None, alias_threshold: int = 8):
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.graph = graph
        self.p = p
        self.q = q
        self.alias_threshold = alias_threshold
        self._rng = as_rng(rng)
        self._indptr, self._indices = _merged_csr(graph)
        self._num_nodes = graph.num_nodes
        # Sorted directed edge keys src * |V| + dst: membership of any batch
        # of (prev, candidate) pairs is one searchsorted.
        degrees = np.diff(self._indptr)
        src = np.repeat(np.arange(self._num_nodes, dtype=np.int64), degrees)
        self._edge_keys = np.sort(src * self._num_nodes + self._indices)
        # Per-node sorted neighbor arrays for the scalar reference path.
        self._sorted_neighbors: Dict[int, np.ndarray] = {}
        # (prev, current) -> (candidates, AliasTable) for small frontiers.
        self._alias_cache: Dict[Tuple[int, int], Tuple[np.ndarray, AliasTable]] = {}

    def _neighbors(self, node: int) -> np.ndarray:
        return self._indices[self._indptr[node]: self._indptr[node + 1]]

    def _neighbor_set(self, node: int) -> np.ndarray:
        cached = self._sorted_neighbors.get(node)
        if cached is None:
            cached = np.sort(self._neighbors(node))
            self._sorted_neighbors[node] = cached
        return cached

    # ------------------------------------------------------------------
    # Second-order transition weights
    # ------------------------------------------------------------------
    def _edge_weights(self, prev: int, candidates: np.ndarray) -> np.ndarray:
        """Unnormalised transition weights of ``candidates`` given ``prev``."""
        weights = np.ones(len(candidates))
        weights[candidates == prev] = 1.0 / self.p
        prev_neighbors = self._neighbor_set(prev)
        pos = np.searchsorted(prev_neighbors, candidates)
        found = np.zeros(len(candidates), dtype=bool)
        in_range = pos < len(prev_neighbors)
        found[in_range] = prev_neighbors[pos[in_range]] == candidates[in_range]
        far = ~found & (candidates != prev)
        weights[far] = 1.0 / self.q
        return weights

    def _alias_step(self, prev: int, current: int) -> int:
        """One draw from the cached alias table of edge ``(prev, current)``."""
        entry = self._alias_cache.get((prev, current))
        if entry is None:
            candidates = self._neighbors(current)
            table = AliasTable(self._edge_weights(prev, candidates))
            entry = (candidates, table)
            if len(self._alias_cache) < _MAX_ALIAS_CACHE:
                self._alias_cache[(prev, current)] = entry
        candidates, table = entry
        return int(candidates[table.sample(1, self._rng)[0]])

    def _biased_step(self, prev: np.ndarray,
                     current: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One second-order step for the whole frontier.

        Returns ``(next_nodes, moved)``; dead-end walkers keep their node
        with ``moved`` False.
        """
        indptr, indices = self._indptr, self._indices
        degrees = indptr[current + 1] - indptr[current]
        moved = degrees > 0
        next_nodes = current.copy()
        active = np.flatnonzero(moved)
        if active.size == 0:
            return next_nodes, moved
        if active.size < self.alias_threshold:
            for i in active:
                next_nodes[i] = self._alias_step(int(prev[i]), int(current[i]))
            return next_nodes, moved

        a_prev = prev[active]
        a_deg = degrees[active]
        total = int(a_deg.sum())
        ends = np.cumsum(a_deg)
        seg_starts = ends - a_deg
        # Flattened ragged candidate lists of all active walkers.
        flat_idx = np.repeat(indptr[current[active]] - seg_starts, a_deg) + np.arange(total)
        candidates = indices[flat_idx]
        prev_rep = np.repeat(a_prev, a_deg)

        weights = np.ones(total)
        weights[candidates == prev_rep] = 1.0 / self.p
        keys = prev_rep * self._num_nodes + candidates
        pos = np.searchsorted(self._edge_keys, keys)
        pos = np.minimum(pos, len(self._edge_keys) - 1)
        found = self._edge_keys[pos] == keys
        far = ~found & (candidates != prev_rep)
        weights[far] = 1.0 / self.q

        # Segmented weighted choice: invert the per-walker cumulative sums.
        cumulative = np.cumsum(weights)
        seg_hi = cumulative[ends - 1]
        seg_lo = np.concatenate([[0.0], seg_hi[:-1]])
        targets = seg_lo + self._rng.random(active.size) * (seg_hi - seg_lo)
        choice = np.searchsorted(cumulative, targets, side="right")
        choice = np.clip(choice, seg_starts, ends - 1)
        next_nodes[active] = candidates[choice]
        return next_nodes, moved

    # ------------------------------------------------------------------
    def walk_matrix(self, starts: np.ndarray, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Biased walks from ``starts`` as a padded ``(W, L)`` matrix."""
        starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        prev = np.full(starts.size, -1, dtype=np.int64)

        def step(nodes: np.ndarray, position: int,
                 walker_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            if position == 1:
                next_nodes, moved = step_uniform(
                    self._indptr, self._indices, nodes, self._rng
                )
            else:
                next_nodes, moved = self._biased_step(prev[walker_ids], nodes)
            prev[walker_ids[moved]] = nodes[moved]
            return next_nodes, moved

        return run_frontier(starts, length, step)

    def walk(self, start: int, length: int) -> List[int]:
        """One biased walk of at most ``length`` nodes."""
        matrix, lengths = self.walk_matrix(np.asarray([start]), length)
        return matrix[0, : lengths[0]].tolist()

    def walks(self, num_walks: int, length: int,
              nodes: Optional[np.ndarray] = None) -> List[List[int]]:
        if nodes is None:
            nodes = np.arange(self.graph.num_nodes)
        result: List[List[int]] = []
        for _ in range(num_walks):
            shuffled = self._rng.permutation(nodes)
            matrix, lengths = self.walk_matrix(shuffled, length)
            result.extend(matrix_to_walks(matrix, lengths))
        return result

    # ------------------------------------------------------------------
    # Scalar reference path (pre-frontier implementation) for equivalence
    # tests and benchmarks.
    # ------------------------------------------------------------------
    def _reference_walk(self, start: int, length: int) -> List[int]:
        path = [int(start)]
        if length <= 1:
            return path
        first = self._neighbors(start)
        if len(first) == 0:
            return path
        path.append(int(first[self._rng.integers(len(first))]))
        while len(path) < length:
            prev, current = path[-2], path[-1]
            candidates = self._neighbors(current)
            if len(candidates) == 0:
                break
            weights = self._edge_weights(prev, candidates)
            weights /= weights.sum()
            path.append(int(self._rng.choice(candidates, p=weights)))
        return path

    def _reference_walks(self, num_walks: int, length: int,
                         nodes: Optional[np.ndarray] = None) -> List[List[int]]:
        if nodes is None:
            nodes = np.arange(self.graph.num_nodes)
        result: List[List[int]] = []
        for _ in range(num_walks):
            shuffled = self._rng.permutation(nodes)
            for start in shuffled:
                result.append(self._reference_walk(int(start), length))
        return result
