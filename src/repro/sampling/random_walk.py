"""Uniform random walks (DeepWalk-style) over one or all relationships."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph
from repro.sampling.adjacency import step_uniform
from repro.utils.rng import SeedLike, as_rng


def _merged_csr(graph: MultiplexHeteroGraph):
    """CSR adjacency of the type-erased union of all relationships."""
    src, dst = graph.merged_homogeneous_view()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_src, kind="stable")
    counts = np.bincount(all_src, minlength=graph.num_nodes)
    indptr = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, all_dst[order]


class UniformRandomWalker:
    """DeepWalk's sampler: walks over the type-erased graph.

    Parameters
    ----------
    graph:
        The multiplex graph; node/edge types are ignored, matching how the
        paper evaluates homogeneous baselines (Sect. IV-B).
    relation:
        When given, restrict walks to that relationship's subgraph.
    """

    def __init__(self, graph: MultiplexHeteroGraph, relation: Optional[str] = None,
                 rng: SeedLike = None):
        self.graph = graph
        self.relation = relation
        self._rng = as_rng(rng)
        if relation is None:
            self._indptr, self._indices = _merged_csr(graph)
        else:
            self._indptr, self._indices = graph.csr(relation)

    def walk(self, start: int, length: int) -> List[int]:
        """One walk of at most ``length`` nodes starting at ``start``.

        The walk stops early at a node without neighbors.
        """
        path = [int(start)]
        current = np.asarray([start], dtype=np.int64)
        for _ in range(length - 1):
            current, moved = step_uniform(self._indptr, self._indices, current, self._rng)
            if not moved[0]:
                break
            path.append(int(current[0]))
        return path

    def walks(self, num_walks: int, length: int,
              nodes: Optional[np.ndarray] = None) -> List[List[int]]:
        """``num_walks`` walks from every node (or from ``nodes``)."""
        if nodes is None:
            nodes = np.arange(self.graph.num_nodes)
        result: List[List[int]] = []
        for _ in range(num_walks):
            shuffled = self._rng.permutation(nodes)
            for start in shuffled:
                result.append(self.walk(int(start), length))
        return result
