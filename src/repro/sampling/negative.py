"""Negative sampling distributions.

Skip-gram training draws "noise" nodes from the unigram distribution raised
to the 3/4 power (word2vec's P_Neg).  For heterogeneous graphs the paper
follows metapath2vec's *heterogeneous* negative sampling: negatives are
drawn among nodes of the same type as the positive context node.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SamplingError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.sampling.alias import AliasTable
from repro.utils.rng import SeedLike, as_rng


class UnigramNegativeSampler:
    """Draws nodes proportional to degree^power (default 0.75).

    Parameters
    ----------
    graph:
        Source of degrees and node types.
    power:
        Distortion exponent; 0 gives the uniform distribution.
    per_type:
        When True (heterogeneous negative sampling), ``sample`` restricted to
        a node type uses a distribution over that type only.
    """

    def __init__(self, graph: MultiplexHeteroGraph, power: float = 0.75,
                 rng: SeedLike = None):
        self.graph = graph
        self.power = power
        self._rng = as_rng(rng)
        degrees = graph.degrees().astype(np.float64)  # repro-lint: intended-dtype=float64 (one-time promotion to the unigram probability dtype)
        weights = np.power(np.maximum(degrees, 1e-12), power)
        # Alias tables give O(1) draws; choice(p=...) would rescan the
        # distribution on every batch.
        self._global_table = AliasTable(weights)
        self._type_tables: Dict[str, AliasTable] = {}
        self._type_nodes: Dict[str, np.ndarray] = {}
        for node_type in graph.schema.node_types:
            nodes = graph.nodes_of_type(node_type)
            if len(nodes) == 0:
                continue
            self._type_nodes[node_type] = nodes
            self._type_tables[node_type] = AliasTable(weights[nodes])

    def sample(self, size: int, node_type: Optional[str] = None,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` node ids, optionally restricted to one node type.

        ``rng`` overrides the sampler's own stream for this call — used by
        the sharded trainer, whose workers share one sampler's (read-only)
        alias tables but must each draw from a private stream.
        """
        rng = self._rng if rng is None else rng
        if size <= 0:
            raise SamplingError(f"sample size must be positive, got {size}")
        if node_type is None:
            return self._global_table.sample(size, rng=rng)
        if node_type not in self._type_nodes:
            raise SamplingError(f"no nodes of type {node_type!r} to sample")
        positions = self._type_tables[node_type].sample(size, rng=rng)
        return self._type_nodes[node_type][positions]

    #: Rejection-resampling rounds before ``exclude_positive`` gives up.  A
    #: positive with unigram mass p survives one round with probability p per
    #: slot, so surviving all rounds needs p ~ 1, i.e. a (near-)degenerate
    #: type distribution where exclusion is impossible anyway.
    MAX_EXCLUDE_ROUNDS = 64

    def sample_like(self, nodes: np.ndarray, num_negatives: int,
                    exclude_positive: bool = False,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """For each node, draw ``num_negatives`` negatives of the same type.

        Returns shape ``(len(nodes), num_negatives)``.  This is the
        heterogeneous negative sampling of Eq. 13.

        With ``exclude_positive=True``, slots that drew the positive context
        node itself are rejection-resampled until every row is free of its
        own positive (word2vec and metapath2vec tolerate such collisions, so
        the default stays off and historical streams stand bit-identical).
        Raises :class:`SamplingError` when exclusion cannot succeed — e.g. a
        node type whose unigram distribution collapses onto the positive.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        result = np.empty((len(nodes), num_negatives), dtype=np.int64)
        codes = self.graph.node_type_codes[nodes]
        for code in np.unique(codes):
            node_type = self.graph.schema.node_types[int(code)]
            mask = codes == code
            count = int(mask.sum()) * num_negatives
            draws = self.sample(count, node_type=node_type, rng=rng)
            result[mask] = draws.reshape(-1, num_negatives)
        if exclude_positive:
            self._resample_positives(nodes, result, rng=rng)
        return result

    def _resample_positives(self, nodes: np.ndarray, result: np.ndarray,
                            rng: Optional[np.random.Generator] = None) -> None:
        """Redraw (in place) any negative equal to its row's positive."""
        codes = self.graph.node_type_codes[nodes]
        for _ in range(self.MAX_EXCLUDE_ROUNDS):
            rows, cols = np.nonzero(result == nodes[:, None])
            if len(rows) == 0:
                return
            # Group colliding slots by node type so each redraw batch hits
            # one alias table, mirroring the primary sampling loop.
            slot_codes = codes[rows]
            for code in np.unique(slot_codes):
                node_type = self.graph.schema.node_types[int(code)]
                sel = slot_codes == code
                draws = self.sample(int(sel.sum()), node_type=node_type,
                                    rng=rng)
                result[rows[sel], cols[sel]] = draws
        bad = np.unique(nodes[np.nonzero(result == nodes[:, None])[0]])
        raise SamplingError(
            "exclude_positive could not find replacement negatives for "
            f"positives {bad[:8].tolist()} after "
            f"{self.MAX_EXCLUDE_ROUNDS} rounds; the type distribution is "
            "degenerate (all mass on the positive node)"
        )
