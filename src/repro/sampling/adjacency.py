"""Vectorised adjacency sampling primitives.

All samplers in this package reduce to "pick a uniform neighbor of each node
in a batch under some (relationship, target-node-type) constraint".  This
module provides that primitive over the graph's CSR arrays, plus a cache of
*type-filtered* CSR views so metapath-guided sampling never rescans neighbor
lists.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph


class TypedAdjacencyCache:
    """Lazy cache of CSR adjacencies filtered to one destination node type.

    ``view(relation, node_type)`` returns ``(indptr, indices)`` where the
    neighbor lists contain only nodes of ``node_type``.  ``node_type=None``
    returns the unfiltered adjacency.
    """

    def __init__(self, graph: MultiplexHeteroGraph):
        self.graph = graph
        self._cache: Dict[Tuple[str, Optional[str]], Tuple[np.ndarray, np.ndarray]] = {}

    def view(self, relation: str, node_type: Optional[str] = None) -> Tuple[np.ndarray, np.ndarray]:
        key = (relation, node_type)
        if key not in self._cache:
            indptr, indices = self.graph.csr(relation)
            if node_type is None:
                self._cache[key] = (indptr, indices)
            else:
                code = self.graph.schema.node_type_index(node_type)
                keep = self.graph.node_type_codes[indices] == code
                new_indices = indices[keep]
                counts = np.zeros(self.graph.num_nodes, dtype=np.int64)
                # Recount kept neighbors per source row.
                row_of = np.repeat(
                    np.arange(self.graph.num_nodes), np.diff(indptr)
                )[keep]
                np.add.at(counts, row_of, 1)
                new_indptr = np.zeros(self.graph.num_nodes + 1, dtype=np.int64)
                np.cumsum(counts, out=new_indptr[1:])
                self._cache[key] = (new_indptr, new_indices)
        return self._cache[key]


def sample_uniform_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    count: int,
    rng: np.random.Generator,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """For each node, draw ``count`` neighbors uniformly with replacement.

    Nodes with an empty neighbor list receive ``fallback`` (defaults to the
    node itself), which keeps batch shapes fixed — the aggregation then mixes
    in the node's own state, a standard GraphSage-style degenerate case.

    Returns an int array of shape ``nodes.shape + (count,)``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    flat = nodes.reshape(-1)
    degrees = indptr[flat + 1] - indptr[flat]
    # Scale the uniform draws in place: same multiply, same truncation,
    # one less (flat.size, count) float64 temporary.
    draws = rng.random((flat.size, count))
    np.multiply(draws, np.maximum(degrees, 1)[:, None], out=draws)
    offsets = draws.astype(np.int64)
    positions = indptr[flat][:, None] + offsets
    # Clip positions for zero-degree rows (value is replaced below anyway).
    positions = np.minimum(positions, len(indices) - 1 if len(indices) else 0)
    if len(indices):
        sampled = indices[positions]
    else:
        sampled = np.zeros((flat.size, count), dtype=np.int64)
    if fallback is None:
        fallback_flat = flat
    else:
        fallback_flat = np.asarray(fallback, dtype=np.int64).reshape(-1)
    empty = degrees == 0
    if empty.any():
        sampled[empty] = fallback_flat[empty, None]
    return sampled.reshape(nodes.shape + (count,))


def step_uniform(
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """One uniform step for each node; returns ``(next_nodes, moved_mask)``.

    Nodes with no neighbors stay in place with ``moved_mask`` False.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    degrees = indptr[nodes + 1] - indptr[nodes]
    moved = degrees > 0
    # In-place scale of the draws: bit-identical offsets, no extra
    # full-frontier float64 temporary on the per-step hot path.
    draws = rng.random(nodes.size)
    np.multiply(draws, np.maximum(degrees, 1), out=draws)
    offsets = draws.astype(np.int64)
    positions = indptr[nodes] + offsets
    positions = np.minimum(positions, len(indices) - 1 if len(indices) else 0)
    next_nodes = nodes.copy()
    if len(indices):
        next_nodes[moved] = indices[positions[moved]]
    return next_nodes, moved
