"""Randomized inter-relationship exploration (Sect. III-B, Eqs. 1-2).

This is the paper's first contribution: a two-phase sampler that crosses
relationship-specific subgraphs.  At a node v_t it

1. draws the next relationship r_{t+1} uniformly among the relationships
   under which v_t has at least one neighbor (Eq. 1), then
2. draws v_{t+1} uniformly from N_{r_{t+1}}(v_t) (Eq. 2).

The resulting path instances follow no predefined metapath scheme; they are
the P_rand aggregation flow of Eq. 4.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph
from repro.sampling.adjacency import sample_uniform_neighbors
from repro.sampling.frontier import PAD, run_frontier
from repro.utils.rng import SeedLike, as_rng


class RandomizedExploration:
    """Two-phase inter-relationship sampler over a multiplex graph."""

    def __init__(self, graph: MultiplexHeteroGraph, rng: SeedLike = None):
        self.graph = graph
        self._rng = as_rng(rng)
        relations = graph.schema.relationships
        # degree matrix D[v, r] = |N_r(v)|, used for the phase-1 choice.
        self._degree_matrix = np.stack(
            [graph.degrees(rel) for rel in relations], axis=1
        )
        self._csr = {rel: graph.csr(rel) for rel in relations}
        self._relations = relations

    # ------------------------------------------------------------------
    def transition_probabilities(self, node: int) -> np.ndarray:
        """p(r_{t+1} | v_t) for every relationship (Eq. 1)."""
        degrees = self._degree_matrix[node]
        active = degrees > 0
        probs = np.zeros(len(self._relations))
        if active.any():
            probs[active] = 1.0 / active.sum()
        return probs

    # ------------------------------------------------------------------
    def _choose_relations(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised phase 1: a relationship index per node (-1 if none)."""
        degrees = self._degree_matrix[nodes]  # (batch, R)
        active = degrees > 0
        counts = active.sum(axis=1)
        # In-place scale: bit-identical draws, one less batch-sized
        # float64 temporary per step.
        scaled = self._rng.random(len(nodes))
        np.multiply(scaled, np.maximum(counts, 1), out=scaled)
        draws = scaled.astype(np.int64)
        cumulative = np.cumsum(active, axis=1)
        # First column where cumulative == draws + 1 and the column is active.
        target = (draws + 1)[:, None]
        hit = (cumulative == target) & active
        chosen = np.argmax(hit, axis=1)
        chosen[counts == 0] = -1
        return chosen

    def step(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One two-phase step for each node in ``nodes``.

        Returns ``(next_nodes, relation_indices)``; isolated nodes stay in
        place with relation index -1.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        chosen = self._choose_relations(nodes)
        next_nodes = nodes.copy()
        for rel_idx, relation in enumerate(self._relations):
            mask = chosen == rel_idx
            if not mask.any():
                continue
            indptr, indices = self._csr[relation]
            sampled = sample_uniform_neighbors(
                indptr, indices, nodes[mask], 1, self._rng
            )
            next_nodes[mask] = sampled[:, 0]
        return next_nodes, chosen

    # ------------------------------------------------------------------
    def walk_matrix(
        self, starts: np.ndarray, length: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched exploration walks via the frontier engine.

        Returns ``(matrix, lengths, relations)`` where ``relations[w, t]``
        is the relationship index used to reach ``matrix[w, t]`` (t >= 1;
        padded with -1 alongside the walk matrix).
        """
        starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        relations = np.full((starts.size, max(length, 1)), PAD, dtype=np.int64)

        def step(nodes: np.ndarray, position: int,
                 walker_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            next_nodes, chosen = self.step(nodes)
            moved = chosen >= 0
            relations[walker_ids[moved], position] = chosen[moved]
            return next_nodes, moved

        matrix, lengths = run_frontier(starts, length, step)
        return matrix, lengths, relations

    def walk(self, start: int, length: int) -> Tuple[List[int], List[str]]:
        """One exploration walk; returns (nodes, relations-used)."""
        matrix, lengths, relations = self.walk_matrix(np.asarray([start]), length)
        n = int(lengths[0])
        path = matrix[0, :n].tolist()
        relations_used = [self._relations[rel] for rel in relations[0, 1:n].tolist()]
        return path, relations_used

    def _reference_walk(self, start: int, length: int) -> Tuple[List[int], List[str]]:
        """Scalar pre-frontier loop, retained for equivalence tests."""
        path = [int(start)]
        relations_used: List[str] = []
        current = np.asarray([start], dtype=np.int64)
        for _ in range(length - 1):
            current, chosen = self.step(current)
            if chosen[0] < 0:
                break
            path.append(int(current[0]))
            relations_used.append(self._relations[int(chosen[0])])
        return path, relations_used

    def sample_layers(self, nodes: np.ndarray, depth: int,
                      fanouts: List[int]) -> List[np.ndarray]:
        """Fixed-size exploration neighborhoods for batched aggregation.

        Layer k (1-based) has shape ``(batch, fanouts[0] * ... * fanouts[k-1])``
        where each entry is an inter-relationship neighbor of the
        corresponding entry of layer k-1.  Layer 0 is ``nodes`` itself.
        These are the N^k_{P_rand} neighborhoods of Eq. 4.
        """
        if depth != len(fanouts):
            raise ValueError(f"need one fanout per level: depth={depth}, fanouts={fanouts}")
        nodes = np.asarray(nodes, dtype=np.int64)
        layers = [nodes]
        frontier = nodes
        for fanout in fanouts:
            flat = frontier.reshape(-1)
            expanded = np.repeat(flat, fanout)
            next_nodes, _ = self.step(expanded)
            frontier = next_nodes.reshape(len(nodes), -1)
            layers.append(frontier)
        return layers
