"""Sampling machinery: walks, exploration, neighborhoods and negatives."""

from repro.sampling.adjacency import (
    TypedAdjacencyCache,
    sample_uniform_neighbors,
    step_uniform,
)
from repro.sampling.alias import AliasTable
from repro.sampling.frontier import (
    PAD,
    concat_matrices,
    matrix_to_walks,
    run_frontier,
    walks_to_matrix,
)
from repro.sampling.random_walk import UniformRandomWalker
from repro.sampling.node2vec_walk import Node2VecWalker
from repro.sampling.metapath_walk import (
    MetapathWalker,
    relationship_walk_matrix,
    relationship_walks,
)
from repro.sampling.exploration import RandomizedExploration
from repro.sampling.neighbor_sampler import MetapathNeighborSampler
from repro.sampling.negative import UnigramNegativeSampler
from repro.sampling.context import batches, context_pairs, relation_context_pairs

__all__ = [
    "AliasTable",
    "PAD",
    "TypedAdjacencyCache",
    "sample_uniform_neighbors",
    "step_uniform",
    "run_frontier",
    "matrix_to_walks",
    "walks_to_matrix",
    "concat_matrices",
    "UniformRandomWalker",
    "Node2VecWalker",
    "MetapathWalker",
    "relationship_walk_matrix",
    "relationship_walks",
    "RandomizedExploration",
    "MetapathNeighborSampler",
    "UnigramNegativeSampler",
    "context_pairs",
    "relation_context_pairs",
    "batches",
]
