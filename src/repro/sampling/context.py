"""Skip-gram context-pair extraction from walks (Sect. III-E).

The context of a node v_i on a walk S is C(v_i) = {v_k : |k - i| <= delta,
k != i} where delta is the window radius.  Training pairs are (center,
context) tuples; for multiplex training each pair carries the relationship
whose walk produced it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SamplingError


def context_pairs(walks: Iterable[Sequence[int]], window: int) -> np.ndarray:
    """Extract all (center, context) pairs within ``window`` of each other.

    Returns an int array of shape (num_pairs, 2); empty walks contribute
    nothing.
    """
    if window <= 0:
        raise SamplingError(f"window must be positive, got {window}")
    centers: List[int] = []
    contexts: List[int] = []
    for walk in walks:
        length = len(walk)
        for i in range(length):
            lo = max(0, i - window)
            hi = min(length, i + window + 1)
            for k in range(lo, hi):
                if k == i:
                    continue
                centers.append(walk[i])
                contexts.append(walk[k])
    if not centers:
        return np.empty((0, 2), dtype=np.int64)
    return np.stack(
        [np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)],
        axis=1,
    )


def relation_context_pairs(
    walks_by_relation: dict,
    window: int,
) -> List[Tuple[str, np.ndarray]]:
    """Per-relationship context pairs: ``{rel: walks}`` -> ``[(rel, pairs)]``."""
    return [
        (relation, context_pairs(walks, window))
        for relation, walks in walks_by_relation.items()
    ]


def batches(pairs: np.ndarray, batch_size: int,
            rng: np.random.Generator) -> Iterable[np.ndarray]:
    """Yield shuffled mini-batches of rows of ``pairs``."""
    if batch_size <= 0:
        raise SamplingError(f"batch size must be positive, got {batch_size}")
    order = rng.permutation(len(pairs))
    for start in range(0, len(pairs), batch_size):
        yield pairs[order[start: start + batch_size]]
