"""Skip-gram context-pair extraction from walks (Sect. III-E).

The context of a node v_i on a walk S is C(v_i) = {v_k : |k - i| <= delta,
k != i} where delta is the window radius.  Training pairs are (center,
context) tuples; for multiplex training each pair carries the relationship
whose walk produced it.

Extraction is a pure numpy window gather over the padded walk matrix: every
(center position, window offset) cell is materialised by broadcasting and
the out-of-range / past-end cells are masked away.  The output rows are
ordered exactly like the historical nested loop — (walk, center position,
context position ascending) — so the vectorised path is a drop-in,
bit-identical replacement (see ``_reference_context_pairs``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import SamplingError
from repro.sampling.frontier import walks_to_matrix

WalkCorpus = Union[
    Iterable[Sequence[int]],            # historical list-of-lists form
    Tuple[np.ndarray, np.ndarray],      # (matrix, lengths) padded form
]

# Rows processed per chunk; bounds the (rows, L, 2*window) scratch tensor.
_CHUNK_ROWS = 16_384


def _pairs_from_matrix(matrix: np.ndarray, lengths: np.ndarray,
                       window: int) -> np.ndarray:
    num_walks, max_len = matrix.shape
    offsets = np.concatenate(
        [np.arange(-window, 0), np.arange(1, window + 1)]
    )
    positions = np.arange(max_len)
    # context position per (center position, offset); clipped for safe gather
    context_pos = positions[:, None] + offsets[None, :]          # (L, 2w)
    gather_pos = np.clip(context_pos, 0, max_len - 1)
    chunks: List[np.ndarray] = []
    for start in range(0, num_walks, _CHUNK_ROWS):
        rows = matrix[start: start + _CHUNK_ROWS]
        row_len = lengths[start: start + _CHUNK_ROWS, None, None]  # (C, 1, 1)
        valid = (
            (context_pos[None, :, :] >= 0)
            & (context_pos[None, :, :] < row_len)
            & (positions[None, :, None] < row_len)
        )
        centers = np.broadcast_to(rows[:, :, None], valid.shape)[valid]
        contexts = rows[:, gather_pos][valid]
        chunks.append(np.stack([centers, contexts], axis=1))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)


def context_pairs(walks: WalkCorpus, window: int) -> np.ndarray:
    """Extract all (center, context) pairs within ``window`` of each other.

    ``walks`` is either an iterable of walks (lists of node ids, possibly
    ragged) or a ``(matrix, lengths)`` pair as produced by the frontier
    engine.  Returns an int array of shape (num_pairs, 2); empty walks
    contribute nothing.
    """
    if window <= 0:
        raise SamplingError(f"window must be positive, got {window}")
    if (
        isinstance(walks, tuple)
        and len(walks) == 2
        and isinstance(walks[0], np.ndarray)
        and walks[0].ndim == 2
    ):
        matrix, lengths = walks
        lengths = np.asarray(lengths, dtype=np.int64)
    else:
        matrix, lengths = walks_to_matrix(list(walks))
    if matrix.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    return _pairs_from_matrix(np.asarray(matrix, dtype=np.int64), lengths, window)


def _reference_context_pairs(walks: Iterable[Sequence[int]],
                             window: int) -> np.ndarray:
    """The original nested-loop extraction, retained for equivalence tests."""
    if window <= 0:
        raise SamplingError(f"window must be positive, got {window}")
    centers: List[int] = []
    contexts: List[int] = []
    for walk in walks:
        length = len(walk)
        for i in range(length):
            lo = max(0, i - window)
            hi = min(length, i + window + 1)
            for k in range(lo, hi):
                if k == i:
                    continue
                centers.append(walk[i])
                contexts.append(walk[k])
    if not centers:
        return np.empty((0, 2), dtype=np.int64)
    return np.stack(
        [np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)],
        axis=1,
    )


def relation_context_pairs(
    walks_by_relation: dict,
    window: int,
) -> List[Tuple[str, np.ndarray]]:
    """Per-relationship context pairs: ``{rel: walks}`` -> ``[(rel, pairs)]``."""
    return [
        (relation, context_pairs(walks, window))
        for relation, walks in walks_by_relation.items()
    ]


def batches(pairs: np.ndarray, batch_size: int,
            rng: np.random.Generator) -> Iterable[np.ndarray]:
    """Yield shuffled mini-batches of rows of ``pairs``."""
    if batch_size <= 0:
        raise SamplingError(f"batch size must be positive, got {batch_size}")
    order = rng.permutation(len(pairs))
    for start in range(0, len(pairs), batch_size):
        yield pairs[order[start: start + batch_size]]
