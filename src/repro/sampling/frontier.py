"""Batched frontier walk engine.

Every walker in this package used to advance one walk at a time in a Python
loop, paying interpreter overhead per *step* even though the underlying CSR
primitives in :mod:`repro.sampling.adjacency` are vectorised.  This module
inverts the loop: keep a *frontier* of W concurrent walkers and advance all
of them with one vectorised CSR step per walk position, so the Python-level
cost is O(length) instead of O(walkers * length).

The engine is deliberately tiny: a driver (:func:`run_frontier`) plus the
padded-matrix representation it produces.  Walkers supply a *step function*

    step(nodes, position, walker_ids) -> (next_nodes, moved_mask)

which receives only the currently-alive frontier (``nodes``), the walk
position being filled (``position``, starting at 1) and the row indices of
those walkers in the full walk matrix (``walker_ids`` — stateful walkers
such as node2vec use these to look up per-walker history).  Walkers that
cannot move (``moved_mask`` False: no valid neighbor) are *masked out* of
the frontier instead of terminating the whole batch — exactly the early
exit of the scalar loops, but per-row.

Walk matrices are int64 arrays of shape ``(W, L)`` padded with
:data:`PAD` (-1) past each walk's end; ``lengths[w]`` gives the number of
valid entries in row ``w``.  :func:`matrix_to_walks` /
:func:`walks_to_matrix` convert between the padded form and the historical
list-of-lists form.
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, List, Sequence, Tuple

import numpy as np

PAD = -1
"""Fill value for walk-matrix entries past a dead walker's last node."""

StepFn = Callable[[np.ndarray, int, np.ndarray], Tuple[np.ndarray, np.ndarray]]


def run_frontier(
    starts: np.ndarray,
    length: int,
    step: StepFn,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance a frontier of walkers to produce a ``(W, L)`` walk matrix.

    Parameters
    ----------
    starts:
        Start node per walker, shape ``(W,)``.
    length:
        Maximum walk length L (number of nodes, including the start).
    step:
        ``step(nodes, position, walker_ids) -> (next_nodes, moved)`` — one
        vectorised transition for the alive frontier.  ``next_nodes`` and
        ``moved`` must have the same shape as ``nodes``; rows with ``moved``
        False are retired from the frontier.

    Returns
    -------
    (matrix, lengths):
        ``matrix`` is int64 of shape ``(W, length)`` padded with :data:`PAD`;
        ``lengths`` is int64 of shape ``(W,)`` with each walk's node count.
    """
    starts = np.asarray(starts, dtype=np.int64).reshape(-1)
    num_walkers = starts.size
    matrix = np.full((num_walkers, max(length, 1)), PAD, dtype=np.int64)
    lengths = np.zeros(num_walkers, dtype=np.int64)
    if num_walkers == 0:
        return matrix, lengths
    matrix[:, 0] = starts
    lengths[:] = 1
    # ``alive`` holds matrix row ids still walking; ``current`` their nodes.
    alive = np.arange(num_walkers)
    current = starts.copy()
    for position in range(1, length):
        next_nodes, moved = step(current, position, alive)
        if not moved.all():
            alive = alive[moved]
            if alive.size == 0:
                break
            next_nodes = next_nodes[moved]
        matrix[alive, position] = next_nodes
        lengths[alive] += 1
        current = next_nodes
    return matrix, lengths


def matrix_to_walks(matrix: np.ndarray, lengths: np.ndarray) -> List[List[int]]:
    """Padded walk matrix -> the historical list-of-lists form."""
    rows = matrix.tolist()
    return [row[:n] for row, n in zip(rows, lengths.tolist())]


def walks_to_matrix(walks: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """List-of-lists walks -> ``(matrix, lengths)`` padded with :data:`PAD`.

    Rows keep the input order; ragged walks are right-padded.
    """
    walks = list(walks)
    num_walks = len(walks)
    lengths = np.fromiter((len(w) for w in walks), dtype=np.int64, count=num_walks)
    max_len = int(lengths.max()) if num_walks else 0
    matrix = np.full((num_walks, max(max_len, 1)), PAD, dtype=np.int64)
    if num_walks == 0 or max_len == 0:
        return matrix, lengths
    flat = np.fromiter(
        chain.from_iterable(walks), dtype=np.int64, count=int(lengths.sum())
    )
    mask = np.arange(max_len)[None, :] < lengths[:, None]
    matrix[mask] = flat
    return matrix, lengths


def concat_matrices(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack ``(matrix, lengths)`` pairs row-wise, repadding to a common width."""
    parts = [part for part in parts if part[0].shape[0]]
    if not parts:
        return np.full((0, 1), PAD, dtype=np.int64), np.zeros(0, dtype=np.int64)
    width = max(matrix.shape[1] for matrix, _ in parts)
    rows = sum(matrix.shape[0] for matrix, _ in parts)
    # One preallocated output filled by row slices: narrow parts land in
    # the left columns with the remainder already PAD, so the result is
    # bit-identical to pad-then-concatenate without the per-part copies.
    stacked = np.full((rows, width), PAD, dtype=np.int64)
    lengths = np.empty(rows, dtype=np.int64)
    row = 0
    for matrix, part_lengths in parts:
        stacked[row:row + matrix.shape[0], : matrix.shape[1]] = matrix
        lengths[row:row + matrix.shape[0]] = part_lengths
        row += matrix.shape[0]
    return stacked, lengths
