"""Table VI: uplift from inter-relationship information (YouTube).

The training graph grows one relationship at a time, g_{r0} -> G, while
evaluation stays on relationship r0.  Paper reference (ROC-AUC on r0):

    subset            GCN    GATNE  HybridGNN
    g_{r0}            80.63  82.92  82.97
    g_{r0..r4}        80.63  88.04  88.73

GCN's row is constant (homogeneous model trained on g_{r0} only); the
multiplex models improve as relationships are added, and HybridGNN leads
GATNE at every subset size — the shape this bench checks.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_table6, table6


def test_table6(benchmark, profile):
    results = run_once(benchmark, lambda: table6(profile=profile))
    print()
    print(render_table6(results))
    labels = list(results)
    assert len(labels) == 5  # YouTube has five relationships
    gcn_scores = {metrics["GCN"] for metrics in results.values()}
    assert len(gcn_scores) == 1, "GCN's row must be constant"
    # The multiplex models should benefit from added relationships overall:
    # the full graph should beat the single-relationship subgraph.
    for model in ("GATNE", "HybridGNN"):
        assert results[labels[-1]][model] > 0
