"""Training-at-scale benchmark: the sharded multi-worker skip-gram trainer.

Generates a million-node ``taobao-xl`` graph with the vectorized synthetic
engine, trains shared skip-gram tables single-worker and K-worker (both
update modes), and reports wall time, speedup and the validation ROC-AUC
delta against the single-worker baseline.  Writes ``BENCH_training.json``.

Two gates:

- **quality** — every K-worker run must land within
  :data:`repro.verify.AUC_TOLERANCE` (0.01 ROC-AUC on the [0, 1] scale) of
  the single-worker baseline.  Always enforced.
- **speedup** — K workers must reach :data:`SPEEDUP_TARGET` over one
  worker.  Only enforced when the host has at least
  :data:`SPEEDUP_MIN_CORES` physical slots (``os.cpu_count()``): hogwild
  cannot beat 1x on a single core, and pretending otherwise would make the
  benchmark dishonest.  The measured numbers and the core count are
  recorded either way.

Run standalone (writes ``BENCH_training.json``):

    PYTHONPATH=src python benchmarks/bench_training.py [--smoke] [--out PATH]

or under pytest (smoke workload):

    PYTHONPATH=src python -m pytest benchmarks/bench_training.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.datasets import load_dataset, split_edges
from repro.perf import Timer
from repro.train import ParallelSkipGramTrainer, ParallelTrainerConfig
from repro.verify import AUC_TOLERANCE

#: K-worker training must be at least this much faster than one worker ...
SPEEDUP_TARGET = 3.0
#: ... but only on hosts with enough cores for parallelism to exist at all.
SPEEDUP_MIN_CORES = 4

#: CI-sized workload: ~20k nodes, seconds per fit.
SMOKE_SETTINGS = dict(scale=0.02, dim=16, epochs=2, batch_size=2048)
#: The acceptance workload: 10^6 nodes, ~2.45M edges.
FULL_SETTINGS = dict(scale=1.0, dim=32, epochs=2, batch_size=4096)

_SHARED = dict(num_walks=1, walk_length=6, window=2, patience=5)


def _fit_case(schemes, split, *, workers: int, update_mode: str,
              dim: int, epochs: int, batch_size: int, seed: int) -> Dict:
    config = ParallelTrainerConfig(
        workers=workers, update_mode=update_mode, dim=dim, epochs=epochs,
        batch_size=batch_size, **_SHARED,
    )
    trainer = ParallelSkipGramTrainer(schemes, split, config, rng=seed)
    with Timer() as timer:
        history = trainer.fit()
    return {
        "workers": workers,
        "update_mode": update_mode,
        "wall_s": timer.elapsed,
        "epoch_s": timer.elapsed / max(1, len(history.losses)),
        "epochs_ran": len(history.losses),
        "final_loss": history.losses[-1],
        "best_val_auc_pct": history.best_val_score,
    }


def run_all(smoke: bool = False, workers: Optional[int] = None,
            scale: Optional[float] = None, seed: int = 0) -> Dict:
    settings = dict(SMOKE_SETTINGS if smoke else FULL_SETTINGS)
    if scale is not None:
        settings["scale"] = scale
    cores = os.cpu_count() or 1
    k = workers or max(2, min(4, cores))

    with Timer() as gen_timer:
        dataset = load_dataset("taobao-xl", scale=settings["scale"], seed=7)
    with Timer() as split_timer:
        split = split_edges(dataset.graph, rng=8)
    schemes = dataset.all_schemes()

    fit_kwargs = dict(dim=settings["dim"], epochs=settings["epochs"],
                      batch_size=settings["batch_size"], seed=seed)
    cases: List[Dict] = [
        _fit_case(schemes, split, workers=1, update_mode="hogwild",
                  **fit_kwargs)
    ]
    baseline = cases[0]
    for mode in ("hogwild", "average"):
        cases.append(
            _fit_case(schemes, split, workers=k, update_mode=mode,
                      **fit_kwargs)
        )
    for case in cases:
        case["speedup_vs_1"] = (
            baseline["wall_s"] / case["wall_s"] if case["wall_s"] > 0
            else float("inf")
        )
        # Metrics are percentages; the gate works on the [0, 1] AUC scale.
        case["auc_delta_vs_1"] = abs(
            case["best_val_auc_pct"] - baseline["best_val_auc_pct"]
        ) / 100.0

    parallel_cases = cases[1:]
    quality_ok = all(
        c["auc_delta_vs_1"] < AUC_TOLERANCE for c in parallel_cases
    )
    best_speedup = max(c["speedup_vs_1"] for c in parallel_cases)
    speedup_enforced = cores >= SPEEDUP_MIN_CORES
    speedup_ok = best_speedup >= SPEEDUP_TARGET

    return {
        "smoke": smoke,
        "graph": repr(dataset.graph),
        "num_nodes": dataset.graph.num_nodes,
        "num_edges": dataset.graph.num_edges,
        "cpu_count": cores,
        "settings": {**settings, "workers": k, **_SHARED, "seed": seed},
        "generate_s": gen_timer.elapsed,
        "split_s": split_timer.elapsed,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cases": cases,
        "gates": {
            "auc_tolerance": AUC_TOLERANCE,
            "quality_ok": quality_ok,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_min_cores": SPEEDUP_MIN_CORES,
            "speedup_enforced": speedup_enforced,
            "best_speedup": best_speedup,
            "speedup_ok": speedup_ok,
            "passed": quality_ok and (speedup_ok or not speedup_enforced),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload (~20k nodes)")
    parser.add_argument("--workers", type=int, default=0,
                        help="K for the K-worker cases "
                             "(default: min(4, cpu_count), at least 2)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the taobao-xl scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_training.json"),
        help="output JSON path (default: <repo>/BENCH_training.json)",
    )
    args = parser.parse_args(argv)

    results = run_all(smoke=args.smoke, workers=args.workers or None,
                      scale=args.scale, seed=args.seed)
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"graph: {results['graph']}")
    print(f"generate {results['generate_s']:.1f}s  "
          f"split {results['split_s']:.1f}s  "
          f"cpu_count {results['cpu_count']}")
    for case in results["cases"]:
        print(
            f"  workers={case['workers']} {case['update_mode']:<8} "
            f"{case['wall_s']:8.1f}s  {case['speedup_vs_1']:5.2f}x  "
            f"val AUC {case['best_val_auc_pct']:6.2f}%  "
            f"delta {case['auc_delta_vs_1']:.4f}"
        )
    gates = results["gates"]
    print(f"quality gate (|dAUC| < {gates['auc_tolerance']}): "
          + ("ok" if gates["quality_ok"] else "FAILED"))
    enforced = "" if gates["speedup_enforced"] else (
        f" [not enforced: {results['cpu_count']} core(s) < "
        f"{gates['speedup_min_cores']}]"
    )
    print(f"speedup gate (>= {gates['speedup_target']}x): "
          f"{gates['best_speedup']:.2f}x"
          + (" ok" if gates["speedup_ok"] else " below target") + enforced)
    print(f"wrote {args.out}")
    return 0 if gates["passed"] else 1


# ----------------------------------------------------------------------
# pytest entry points (smoke workload)
# ----------------------------------------------------------------------
def test_parallel_training_quality():
    """K-worker training stays within AUC_TOLERANCE of one worker."""
    results = run_all(smoke=True, workers=2)
    for case in results["cases"][1:]:
        print(f"\nworkers={case['workers']} {case['update_mode']}: "
              f"delta {case['auc_delta_vs_1']:.4f}")
        assert case["auc_delta_vs_1"] < AUC_TOLERANCE, case


def test_speedup_on_multicore_hosts():
    """>= 3x with K workers — only meaningful with real cores."""
    import pytest

    if (os.cpu_count() or 1) < SPEEDUP_MIN_CORES:
        pytest.skip(f"host has {os.cpu_count()} core(s); "
                    f"speedup needs >= {SPEEDUP_MIN_CORES}")
    results = run_all(smoke=True)
    assert results["gates"]["best_speedup"] >= SPEEDUP_TARGET, results["gates"]


if __name__ == "__main__":
    raise SystemExit(main())
