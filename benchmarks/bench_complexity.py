"""Sect. III-F: time-complexity of HybridGNN's forward pass.

The paper derives the cost  prod_i N_i * d_k^2  for hybrid aggregation plus
O((|rho(v)|+1)^2 d_k) + O(|R|^2 d_k) for the hierarchical attention.  This
bench measures the forward wall-time while scaling (a) the per-hop fanout
N_i and (b) the number of relationships |R|, and checks the qualitative
scaling: superlinear in the fanout product, increasing in |R|.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.core import HybridGNN, HybridGNNConfig
from repro.datasets import load_dataset, split_edges
from repro.utils.tables import format_table


def _forward_seconds(model, nodes, relation, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        model(nodes, relation)
    return (time.perf_counter() - start) / repeats


def test_forward_cost_scaling(benchmark, profile):
    def sweep():
        dataset = load_dataset("taobao", scale=profile.scale, seed=0)
        split = split_edges(dataset.graph, rng=1)
        schemes = dataset.all_schemes()
        nodes = np.arange(min(256, split.train_graph.num_nodes))
        results = {"fanout": {}, "relations": {}}

        for fanout in (2, 4, 8):
            config = HybridGNNConfig(
                base_dim=16, edge_dim=8,
                metapath_fanouts=(fanout, fanout, 2, 2, 2, 2),
                exploration_fanout=fanout, exploration_depth=2,
            )
            model = HybridGNN(split.train_graph, schemes, config, rng=2)
            results["fanout"][fanout] = _forward_seconds(
                model, nodes, "page_view"
            )

        relations = list(split.train_graph.schema.relationships)
        for upto in range(1, len(relations) + 1):
            subset = relations[:upto]
            sub = split.train_graph.relationship_subgraph(subset)
            sub_schemes = {rel: schemes[rel] for rel in subset}
            config = HybridGNNConfig(
                base_dim=16, edge_dim=8, metapath_fanouts=(4, 3, 2, 2, 2, 2),
                exploration_fanout=4, exploration_depth=2,
            )
            model = HybridGNN(sub, sub_schemes, config, rng=2)
            results["relations"][upto] = _forward_seconds(
                model, nodes, subset[0]
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["fanout N_i", "forward seconds"],
        [[k, v] for k, v in results["fanout"].items()],
        title="Forward cost vs fanout (paper: ~prod N_i d_k^2)",
        float_fmt="{:.4f}",
    ))
    print(format_table(
        ["|R|", "forward seconds"],
        [[k, v] for k, v in results["relations"].items()],
        title="Forward cost vs number of relationships",
        float_fmt="{:.4f}",
    ))
    # Qualitative scaling checks (loose: wall-time on shared CPUs is noisy).
    assert results["fanout"][8] > results["fanout"][2]
    assert results["relations"][len(results["relations"])] > results["relations"][1] * 0.8
