"""Table VII: ablation study (F1).

Variants: full model, w/o metapath-level attention, w/o relationship-level
attention, w/o randomized exploration, w/o hybrid aggregation flows.  Paper
finding: every ablation loses F1, with randomized exploration and hybrid
flows mattering most on YouTube/IMDb/Taobao.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.models import ABLATION_VARIANTS
from repro.experiments.tables import render_table7, table7


def test_table7(benchmark, profile):
    results = run_once(benchmark, lambda: table7(profile=profile))
    print()
    print(render_table7(results))
    assert set(results) == set(ABLATION_VARIANTS)
    for variant, per_dataset in results.items():
        for dataset, f1 in per_dataset.items():
            assert 0 <= f1 <= 100, f"{variant}/{dataset}: F1 {f1}"
