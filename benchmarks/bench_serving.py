"""Micro-benchmarks: the batch serving engine vs the scalar references.

Each case times the retained ``_reference_*`` (pre-engine, one-source-at-a-
time) recommendation paths against :class:`repro.serving.BatchServingEngine`
on the same workload and reports the speedup.  Run standalone (writes
``BENCH_serving.json``):

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--out PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import EmbeddingStore, Recommender
from repro.datasets import load_dataset
from repro.eval.ranking import _reference_ranked_candidates
from repro.experiments.profiles import get_profile
from repro.perf import Timer
from repro.serving import BatchServingEngine


def _time(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def _case(name: str, reference: Callable[[], object],
          batched: Callable[[], object], repeats: int = 5) -> Dict[str, float]:
    reference_s = _time(reference, repeats)
    batched_s = _time(batched, repeats)
    return {
        "name": name,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s if batched_s > 0 else float("inf"),
    }


def _random_store(graph, dim: int = 32, seed: int = 0) -> EmbeddingStore:
    rng = np.random.default_rng(seed)
    return EmbeddingStore({
        relation: rng.standard_normal((graph.num_nodes, dim))
        for relation in graph.schema.relationships
    })


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def bench_recommend_batch(recommender, sources, relation,
                          k: int) -> Dict[str, float]:
    """The acceptance-criterion case: batched top-K vs the scalar loop."""
    return _case(
        "recommend_batch",
        lambda: recommender._reference_recommend_batch(sources, relation, k=k),
        lambda: recommender.recommend_batch(sources, relation, k=k),
    )


def bench_similar_nodes(recommender, nodes, relation, k: int) -> Dict[str, float]:
    return _case(
        "similar_nodes",
        lambda: [
            recommender._reference_similar_nodes(int(n), relation, k=k)
            for n in nodes
        ],
        lambda: recommender.engine.similar_batch(nodes, relation, k=k),
    )


def bench_rank_sources(recommender, sources, relation,
                       target_type: str) -> Dict[str, float]:
    """The ranking evaluator's per-source workload (full orderings)."""
    store, graph = recommender.model, recommender.graph
    return _case(
        "rank_sources",
        lambda: [
            _reference_ranked_candidates(store, graph, int(s), relation, target_type)
            for s in sources
        ],
        lambda: recommender.engine.rank_all(
            sources, relation, target_type=target_type
        ),
    )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all(profile=None, smoke: bool = False) -> Dict[str, object]:
    """Run every case; ``smoke`` shrinks the workload for CI."""
    profile = profile or get_profile("smoke" if smoke else "")
    # Serving stresses pool size, so the graph is scaled up relative to the
    # training profiles (the reference path's cost is what's being measured;
    # tiny training-sized graphs leave nothing for the batch engine to
    # amortise).
    scale = profile.scale * (32.0 if smoke else 64.0)
    num_sources = 384 if smoke else 512
    k = 10
    dataset = load_dataset("taobao", scale=scale, seed=7)
    graph = dataset.graph
    relation = graph.schema.relationships[0]
    store = _random_store(graph)
    recommender = Recommender(store, graph)

    degrees = graph.degrees(relation)
    sources = np.flatnonzero(degrees > 0)[:num_sources]
    target_type = graph.node_type(int(graph.neighbors(int(sources[0]), relation)[0]))
    probe_nodes = graph.nodes_of_type(target_type)[: max(16, num_sources // 4)]

    cases: List[Dict[str, float]] = [
        bench_recommend_batch(recommender, sources, relation, k),
        bench_similar_nodes(recommender, probe_nodes, relation, k),
        bench_rank_sources(
            recommender, sources[: num_sources // 2], relation, target_type
        ),
    ]
    return {
        "profile": profile.name,
        "smoke": smoke,
        "graph": repr(graph),
        "settings": {
            "scale": scale, "num_sources": int(len(sources)), "k": k,
            "relation": relation,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "serving_stats": recommender.engine.latency_report(),
        "cases": {case["name"]: case for case in cases},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload (also selected by default "
                             "when $REPRO_PROFILE is unset)")
    parser.add_argument("--profile", default="",
                        help="profile name (default: $REPRO_PROFILE / smoke)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="output JSON path (default: <repo>/BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    results = run_all(get_profile(args.profile), smoke=args.smoke)
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"profile: {results['profile']}  ({results['graph']})")
    for name, case in results["cases"].items():
        print(
            f"  {name:<16} {case['reference_s'] * 1e3:8.2f}ms -> "
            f"{case['batched_s'] * 1e3:7.2f}ms   {case['speedup']:6.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_recommend_batch_speedup():
    """Acceptance criterion: >= 10x on the batched recommendation path."""
    results = run_all(smoke=True)
    case = results["cases"]["recommend_batch"]
    print(f"\nrecommend_batch: {case['speedup']:.1f}x "
          f"({case['reference_s'] * 1e3:.1f}ms -> {case['batched_s'] * 1e3:.1f}ms)")
    assert case["speedup"] >= 10.0


def test_all_serving_cases_faster():
    results = run_all(smoke=True)
    for name, case in results["cases"].items():
        print(f"\n{name}: {case['speedup']:.1f}x")
        assert case["speedup"] > 1.0, case


if __name__ == "__main__":
    raise SystemExit(main())
