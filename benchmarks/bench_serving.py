"""Micro-benchmarks: the batch serving engine vs the scalar references.

Each case times the retained ``_reference_*`` (pre-engine, one-source-at-a-
time) recommendation paths against :class:`repro.serving.BatchServingEngine`
on the same workload and reports the speedup.  A second section
(``index_sweep``) scales a synthetic candidate pool to 10^6 vectors and
measures every :mod:`repro.serving.index` backend against the exact
brute-force oracle — search latency, recall@10, and candidates scored per
query.  The sweep uses i.i.d. Gaussian vectors, the *structureless worst
case* for approximate retrieval: real (trained) embedding tables cluster,
so sweep recall is a floor, not an estimate.  Run standalone (writes
``BENCH_serving.json``):

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--out PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import EmbeddingStore, Recommender
from repro.datasets import load_dataset
from repro.eval.ranking import _reference_ranked_candidates
from repro.experiments.profiles import get_profile
from repro.perf import Timer
from repro.serving import BatchServingEngine


def _time(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def _case(name: str, reference: Callable[[], object],
          batched: Callable[[], object], repeats: int = 5) -> Dict[str, float]:
    reference_s = _time(reference, repeats)
    batched_s = _time(batched, repeats)
    return {
        "name": name,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s if batched_s > 0 else float("inf"),
    }


def _random_store(graph, dim: int = 32, seed: int = 0) -> EmbeddingStore:
    rng = np.random.default_rng(seed)
    return EmbeddingStore({
        relation: rng.standard_normal((graph.num_nodes, dim))
        for relation in graph.schema.relationships
    })


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def bench_recommend_batch(recommender, sources, relation,
                          k: int) -> Dict[str, float]:
    """The acceptance-criterion case: batched top-K vs the scalar loop."""
    return _case(
        "recommend_batch",
        lambda: recommender._reference_recommend_batch(sources, relation, k=k),
        lambda: recommender.recommend_batch(sources, relation, k=k),
    )


def bench_similar_nodes(recommender, nodes, relation, k: int) -> Dict[str, float]:
    return _case(
        "similar_nodes",
        lambda: [
            recommender._reference_similar_nodes(int(n), relation, k=k)
            for n in nodes
        ],
        lambda: recommender.engine.similar_batch(nodes, relation, k=k),
    )


def bench_rank_sources(recommender, sources, relation,
                       target_type: str) -> Dict[str, float]:
    """The ranking evaluator's per-source workload (full orderings)."""
    store, graph = recommender.model, recommender.graph
    return _case(
        "rank_sources",
        lambda: [
            _reference_ranked_candidates(store, graph, int(s), relation, target_type)
            for s in sources
        ],
        lambda: recommender.engine.rank_all(
            sources, relation, target_type=target_type
        ),
    )


# ----------------------------------------------------------------------
# Index pool-scaling sweep
# ----------------------------------------------------------------------
# HNSW is a sequential pure-python build (~2ms/vector); pools above this
# size are skipped in the sweep rather than silently benchmarked at hours
# of build time.  IVF (blocked BLAS k-means) runs at every size.
_HNSW_SWEEP_CAP = 10_000


def _sweep_backends(pool_size: int) -> List[Dict[str, object]]:
    """Backend configs per pool size, tuned for the recall/latency knee."""
    # nprobe grows with nlist (~sqrt(N)) to hold the probed fraction near
    # 10%; at 10^6 that is the measured >= 5x-speedup point on Gaussian
    # vectors (finer tuning trades recall against latency linearly).
    nlist = int(round(np.sqrt(pool_size)))
    configs: List[Dict[str, object]] = [
        {"backend": "ivf", "params": {"nprobe": max(16, nlist // 8)}},
    ]
    if pool_size <= _HNSW_SWEEP_CAP:
        configs.append({
            "backend": "hnsw",
            "params": {"m": 12, "ef_construction": 64, "ef_search": 96},
        })
    return configs


def bench_index_sweep(smoke: bool, dim: int = 32, k: int = 10,
                      num_queries: int = 64, seed: int = 0,
                      sizes: Optional[List[int]] = None) -> Dict[str, object]:
    """Latency + recall@k per index backend over growing candidate pools."""
    from repro.serving.index import ExactIndex, make_index

    if sizes is None:
        sizes = [4096, 32768] if smoke else [10_000, 100_000, 1_000_000]
    rng = np.random.default_rng(seed)
    pools = []
    for pool_size in sizes:
        vectors = rng.standard_normal((pool_size, dim))
        queries = rng.standard_normal((num_queries, dim))
        repeats = 3 if pool_size >= 500_000 else 5
        exact = ExactIndex(block_size=16).build(vectors)
        exact_s = _time(lambda: exact.search(queries, k), repeats)
        exact_ids = [set(ids.tolist()) for ids, _ in exact.search(queries, k)]
        entry: Dict[str, object] = {
            "pool_size": pool_size,
            "exact": {
                "search_s": exact_s,
                "scored_per_query": pool_size,
            },
            "backends": {},
        }
        for config in _sweep_backends(pool_size):
            backend = str(config["backend"])
            index = make_index(backend, seed=seed, **config["params"])
            with Timer() as build_timer:
                index.build(vectors)
            search_s = _time(lambda: index.search(queries, k), repeats)
            found = index.search(queries, k)
            recall = float(np.mean([
                len(exact_ids[j] & set(ids.tolist())) / k
                for j, (ids, _) in enumerate(found)
            ]))
            entry["backends"][backend] = {
                "params": config["params"],
                "build_s": build_timer.elapsed,
                "search_s": search_s,
                "speedup_vs_exact": exact_s / search_s if search_s > 0 else float("inf"),
                "recall_at_k": recall,
                "scored_per_query": index.last_candidates // num_queries,
            }
        pools.append(entry)
    return {
        "dim": dim,
        "k": k,
        "num_queries": num_queries,
        "distribution": "iid standard normal (structureless ANN worst case)",
        "hnsw_pool_cap": _HNSW_SWEEP_CAP,
        "pools": pools,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all(profile=None, smoke: bool = False) -> Dict[str, object]:
    """Run every case; ``smoke`` shrinks the workload for CI."""
    profile = profile or get_profile("smoke" if smoke else "")
    # Serving stresses pool size, so the graph is scaled up relative to the
    # training profiles (the reference path's cost is what's being measured;
    # tiny training-sized graphs leave nothing for the batch engine to
    # amortise).
    scale = profile.scale * (32.0 if smoke else 64.0)
    num_sources = 384 if smoke else 512
    k = 10
    dataset = load_dataset("taobao", scale=scale, seed=7)
    graph = dataset.graph
    relation = graph.schema.relationships[0]
    store = _random_store(graph)
    recommender = Recommender(store, graph)

    degrees = graph.degrees(relation)
    sources = np.flatnonzero(degrees > 0)[:num_sources]
    target_type = graph.node_type(int(graph.neighbors(int(sources[0]), relation)[0]))
    probe_nodes = graph.nodes_of_type(target_type)[: max(16, num_sources // 4)]

    cases: List[Dict[str, float]] = [
        bench_recommend_batch(recommender, sources, relation, k),
        bench_similar_nodes(recommender, probe_nodes, relation, k),
        bench_rank_sources(
            recommender, sources[: num_sources // 2], relation, target_type
        ),
    ]
    return {
        "profile": profile.name,
        "smoke": smoke,
        "graph": repr(graph),
        "settings": {
            "scale": scale, "num_sources": int(len(sources)), "k": k,
            "relation": relation,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "serving_stats": recommender.engine.latency_report(),
        "cases": {case["name"]: case for case in cases},
        "index_sweep": bench_index_sweep(smoke),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload (also selected by default "
                             "when $REPRO_PROFILE is unset)")
    parser.add_argument("--profile", default="",
                        help="profile name (default: $REPRO_PROFILE / smoke)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="output JSON path (default: <repo>/BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    results = run_all(get_profile(args.profile), smoke=args.smoke)
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"profile: {results['profile']}  ({results['graph']})")
    for name, case in results["cases"].items():
        print(
            f"  {name:<16} {case['reference_s'] * 1e3:8.2f}ms -> "
            f"{case['batched_s'] * 1e3:7.2f}ms   {case['speedup']:6.1f}x"
        )
    sweep = results["index_sweep"]
    print(f"index sweep (dim={sweep['dim']}, k={sweep['k']}, "
          f"{sweep['num_queries']} queries):")
    for pool in sweep["pools"]:
        exact = pool["exact"]
        print(f"  pool {pool['pool_size']:>9,}  "
              f"exact {exact['search_s'] * 1e3:8.2f}ms")
    for pool in sweep["pools"]:
        for backend, entry in pool["backends"].items():
            print(
                f"  pool {pool['pool_size']:>9,}  {backend:<5} "
                f"{entry['search_s'] * 1e3:8.2f}ms  "
                f"{entry['speedup_vs_exact']:6.1f}x  "
                f"recall@{sweep['k']} {entry['recall_at_k']:.3f}  "
                f"scored/q {entry['scored_per_query']:,}  "
                f"(build {entry['build_s']:.1f}s)"
            )
    print(f"wrote {args.out}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_recommend_batch_speedup():
    """Acceptance criterion: >= 10x on the batched recommendation path."""
    results = run_all(smoke=True)
    case = results["cases"]["recommend_batch"]
    print(f"\nrecommend_batch: {case['speedup']:.1f}x "
          f"({case['reference_s'] * 1e3:.1f}ms -> {case['batched_s'] * 1e3:.1f}ms)")
    assert case["speedup"] >= 10.0


def test_all_serving_cases_faster():
    results = run_all(smoke=True)
    for name, case in results["cases"].items():
        print(f"\n{name}: {case['speedup']:.1f}x")
        assert case["speedup"] > 1.0, case


if __name__ == "__main__":
    raise SystemExit(main())
