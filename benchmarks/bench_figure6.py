"""Fig. 6: recommendation quality by node degree on Taobao.

PR@10 of HybridGNN per degree cluster, per relationship.  Paper finding:
higher-degree nodes are recommended better under every relationship because
the samplers find richer metapath-guided neighborhoods for them.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure6, render_figure6


def test_figure6(benchmark, profile):
    results = run_once(benchmark, lambda: figure6(profile=profile))
    print()
    print(render_figure6(results))
    relations = [key for key in results if key != "buckets"]
    assert relations, "expected per-relationship series"
    for relation in relations:
        assert len(results[relation]) == len(results["buckets"])
