"""Load generator for the online service: sustained mixed read/write traffic.

Three phases against one :class:`repro.serving.RecommendService`:

- **single** — a seeded mixed trace (recommend/similar reads, feedback
  writes, cold-start nodes) replayed synchronously; reports sustained
  throughput (ops/s) and per-endpoint p50/p95/p99 latency through multiple
  compaction cycles;
- **threaded** — the same traffic shape driven from a thread pool with
  micro-batching enabled, so requests actually coalesce and the admission
  queue sees concurrent load;
- **pressure** — a deliberately undersized admission queue hammered by the
  thread pool; measures the rejected fraction (``QueueFullError`` is the
  typed backpressure outcome, so "heavy traffic sheds load instead of
  falling over" is a number, not a claim).

Run standalone (writes ``BENCH_service.json``):

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--out PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import EmbeddingStore
from repro.datasets import load_dataset
from repro.errors import QueueFullError
from repro.perf import Timer
from repro.serving import RecommendService, ServiceConfig
from repro.serving.traffic import TraceOp, generate_trace, replay_trace


def _random_store(graph, dim: int = 32, seed: int = 0) -> EmbeddingStore:
    rng = np.random.default_rng(seed)
    return EmbeddingStore({
        relation: rng.standard_normal((graph.num_nodes, dim))
        for relation in graph.schema.relationships
    })


def _endpoint_summary(service: RecommendService) -> Dict[str, object]:
    return {
        name: stats.to_dict()
        for name, stats in service.endpoint_stats.items()
    }


def _service(graph, store, **overrides) -> RecommendService:
    config = ServiceConfig(**overrides)
    return RecommendService(store, graph, config=config)


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def bench_single(graph, store, trace: List[TraceOp],
                 compaction_threshold: int) -> Dict[str, object]:
    """Synchronous replay: sustained mixed-traffic throughput."""
    service = _service(
        graph, store, flush_interval=0.0, max_queue=1_000_000,
        compaction_threshold=compaction_threshold,
    )
    with Timer() as timer:
        summary = replay_trace(service, trace)
    elapsed = timer.elapsed
    return {
        "ops": len(trace),
        "elapsed_s": elapsed,
        "throughput_ops_s": len(trace) / elapsed if elapsed > 0 else 0.0,
        "traffic": summary,
        "endpoints": _endpoint_summary(service),
        "ingestion": service.view.stats(),
    }


def _run_op(service: RecommendService, op: TraceOp) -> str:
    try:
        if op.op == "recommend":
            service.recommend(op.nodes[0], op.relation, op.k)
        elif op.op == "similar":
            service.similar(op.nodes[0], op.relation, op.k)
        else:
            service.feedback(op.nodes[0], op.nodes[1], op.relation)
        return "ok"
    except QueueFullError:
        return "rejected"


def bench_threaded(graph, store, trace: List[TraceOp], workers: int,
                   compaction_threshold: int,
                   max_queue: int = 1_000_000) -> Dict[str, object]:
    """Thread-pool replay with micro-batching live.

    Feedback ops run up front (the threaded phase measures concurrent read
    coalescing; interleaved writes are covered by the single phase and the
    concurrency test suite), then reads flood the pool.
    """
    service = _service(
        graph, store, flush_interval=0.002, max_batch=32,
        max_queue=max_queue, compaction_threshold=compaction_threshold,
    )
    writes = [op for op in trace if op.op == "feedback"]
    reads = [op for op in trace if op.op != "feedback"]
    for op in writes:
        _run_op(service, op)
    with Timer() as timer:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(lambda op: _run_op(service, op), reads))
    elapsed = timer.elapsed
    rejected = outcomes.count("rejected")
    return {
        "workers": workers,
        "reads": len(reads),
        "writes_preloaded": len(writes),
        "elapsed_s": elapsed,
        "throughput_ops_s": len(reads) / elapsed if elapsed > 0 else 0.0,
        "rejected": rejected,
        "endpoints": _endpoint_summary(service),
        "queue_high_water": service._queue_high_water,
        "ingestion": service.view.stats(),
    }


def bench_pressure(graph, store, trace: List[TraceOp],
                   workers: int) -> Dict[str, object]:
    """Undersized queue under concurrent load: rejection is the outcome."""
    result = bench_threaded(
        graph, store, trace, workers,
        compaction_threshold=0, max_queue=2,
    )
    reads = result["reads"]
    result["rejected_fraction"] = result["rejected"] / reads if reads else 0.0
    return result


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all(smoke: bool = False, seed: int = 0) -> Dict[str, object]:
    scale = 0.5 if smoke else 2.0
    num_ops = 600 if smoke else 4000
    compaction_threshold = 64 if smoke else 256
    workers = 4 if smoke else 8
    dataset = load_dataset("taobao", scale=scale, seed=7)
    graph = dataset.graph
    store = _random_store(graph, seed=seed)
    trace = generate_trace(
        graph, num_ops, seed=seed, read_fraction=0.7, new_node_rate=0.03,
    )
    return {
        "smoke": smoke,
        "graph": repr(graph),
        "settings": {
            "scale": scale, "ops": num_ops, "workers": workers,
            "compaction_threshold": compaction_threshold, "seed": seed,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "single": bench_single(graph, store, trace, compaction_threshold),
        "threaded": bench_threaded(
            graph, store, trace, workers, compaction_threshold
        ),
        "pressure": bench_pressure(graph, store, trace, workers),
    }


def _print_phase(name: str, phase: Dict[str, object]) -> None:
    print(f"  {name:<9} {phase['throughput_ops_s']:10.0f} ops/s  "
          f"({phase['elapsed_s'] * 1e3:.1f}ms)")
    for endpoint, stats in phase["endpoints"].items():
        if not stats["requests"]:
            continue
        latency = stats["latency_ms"]
        print(
            f"    {endpoint:<10} n={stats['requests']:<6} "
            f"batches={stats['batches']:<6} rejected={stats['rejected']:<5} "
            f"p50 {latency['p50']:7.3f}ms  p95 {latency['p95']:7.3f}ms  "
            f"p99 {latency['p99']:7.3f}ms"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_service.json"),
        help="output JSON path (default: <repo>/BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    results = run_all(smoke=args.smoke, seed=args.seed)
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"service load ({results['graph']}):")
    _print_phase("single", results["single"])
    _print_phase("threaded", results["threaded"])
    _print_phase("pressure", results["pressure"])
    pressure = results["pressure"]
    print(f"  pressure rejected fraction: "
          f"{pressure['rejected_fraction']:.2%} "
          f"(queue bound 2, {pressure['workers']} workers)")
    ingestion = results["single"]["ingestion"]
    print(f"  single-phase ingestion: {ingestion['edges_ingested']} edges, "
          f"{ingestion['nodes_ingested']} cold nodes, "
          f"{ingestion['compactions']} compactions")
    print(f"wrote {args.out}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_service_sustains_mixed_traffic():
    """Smoke acceptance: sustained throughput through compaction cycles."""
    results = run_all(smoke=True)
    single = results["single"]
    assert single["throughput_ops_s"] > 50.0
    assert single["ingestion"]["compactions"] >= 1
    for endpoint, stats in single["endpoints"].items():
        if stats["requests"]:
            assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"]


def test_pressure_phase_sheds_load_typed():
    """The undersized queue rejects via QueueFullError, never crashes."""
    results = run_all(smoke=True)
    pressure = results["pressure"]
    assert pressure["rejected"] + pressure["reads"] > 0
    # every op either completed or was shed; the run itself never raised


if __name__ == "__main__":
    raise SystemExit(main())
