"""Micro-benchmarks: batched frontier sampling vs the scalar references.

Each case times the retained ``_reference`` (pre-frontier, one-walk-at-a-time)
implementation against the batched frontier engine on the same workload and
reports the speedup.  Run standalone via ``benchmarks/run_bench.py`` (writes
``BENCH_sampling.json``) or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_sampling.py -q
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.datasets import load_dataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.perf import Timer
from repro.sampling import (
    AliasTable,
    MetapathWalker,
    Node2VecWalker,
    UniformRandomWalker,
    context_pairs,
    relationship_walk_matrix,
)
from repro.sampling.context import _reference_context_pairs


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def _case(name: str, reference: Callable[[], object],
          batched: Callable[[], object], repeats: int = 3) -> Dict[str, float]:
    reference_s = _time(reference, repeats)
    batched_s = _time(batched, repeats)
    return {
        "name": name,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s if batched_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def bench_uniform_walks(graph, num_walks: int, length: int) -> Dict[str, float]:
    return _case(
        "uniform_walks",
        lambda: UniformRandomWalker(graph, rng=0)._reference_walks(num_walks, length),
        lambda: UniformRandomWalker(graph, rng=0).walks_matrix(num_walks, length),
    )


def bench_metapath_walks(dataset, num_walks: int, length: int) -> Dict[str, float]:
    graph = dataset.graph
    relation = graph.schema.relationships[0]
    scheme = dataset.schemes_for(relation)[0]
    return _case(
        "metapath_walks",
        lambda: MetapathWalker(graph, scheme, rng=0)._reference_walks(num_walks, length),
        lambda: MetapathWalker(graph, scheme, rng=0).walks_matrix(num_walks, length),
    )


def bench_node2vec_walks(graph, num_walks: int, length: int) -> Dict[str, float]:
    return _case(
        "node2vec_walks",
        lambda: Node2VecWalker(graph, p=2.0, q=0.5, rng=0)._reference_walks(
            num_walks, length
        ),
        lambda: Node2VecWalker(graph, p=2.0, q=0.5, rng=0).walks(num_walks, length),
        repeats=2,
    )


def bench_context_pairs(graph, num_walks: int, length: int,
                        window: int) -> Dict[str, float]:
    walker = UniformRandomWalker(graph, rng=0)
    matrix, lengths = walker.walks_matrix(num_walks, length)
    walk_lists = [row[:n] for row, n in zip(matrix.tolist(), lengths.tolist())]
    return _case(
        "context_pairs",
        lambda: _reference_context_pairs(walk_lists, window),
        lambda: context_pairs((matrix, lengths), window),
    )


def bench_walks_plus_pairs(graph, num_walks: int, length: int,
                           window: int) -> Dict[str, float]:
    """The acceptance-criterion case: full walk + pair generation pipeline."""

    def reference():
        walks = UniformRandomWalker(graph, rng=0)._reference_walks(num_walks, length)
        return _reference_context_pairs(walks, window)

    def batched():
        matrix, lengths = UniformRandomWalker(graph, rng=0).walks_matrix(
            num_walks, length
        )
        return context_pairs((matrix, lengths), window)

    return _case("walks_plus_pairs", reference, batched)


def bench_generate_pairs(dataset, num_walks: int, length: int,
                         window: int) -> Dict[str, float]:
    """The trainer's per-epoch sampling workload: all relationships' schemes."""
    graph = dataset.graph
    schemes = dataset.all_schemes()

    def reference():
        for relation in graph.schema.relationships:
            adjacency = None
            walks: List[List[int]] = []
            for scheme in schemes.get(relation, []):
                walker = MetapathWalker(graph, scheme, rng=0, adjacency=adjacency)
                adjacency = walker._adjacency
                walks.extend(walker._reference_walks(num_walks, length))
            walks = [walk for walk in walks if len(walk) > 1]
            _reference_context_pairs(walks, window)

    def batched():
        for relation in graph.schema.relationships:
            matrix, lengths = relationship_walk_matrix(
                graph, schemes.get(relation, []), num_walks, length, rng=0
            )
            keep = lengths > 1
            context_pairs((matrix[keep], lengths[keep]), window)

    return _case("generate_pairs", reference, batched)


def bench_alias_build(n: int = 50_000) -> Dict[str, float]:
    weights = np.random.default_rng(0).random(n) ** 2

    def reference():
        # The pre-vectorisation construction: Python list-comprehension
        # partition plus numpy scalar indexing in the pairing loop.
        probs = weights * (n / weights.sum())
        prob = np.zeros(n)
        alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if probs[i] < 1.0]
        large = [i for i in range(n) if probs[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = probs[s]
            alias[s] = l
            probs[l] = probs[l] - (1.0 - probs[s])
            if probs[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large + small:
            prob[i] = 1.0
        return prob, alias

    return _case("alias_build", reference, lambda: AliasTable(weights))


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all(profile: ExperimentProfile = None) -> Dict[str, object]:
    """Run every case under ``profile`` (default: $REPRO_PROFILE / smoke)."""
    profile = profile or get_profile()
    trainer = profile.trainer
    dataset = load_dataset("taobao", scale=profile.scale, seed=7)
    graph = dataset.graph
    num_walks, length, window = (
        trainer.num_walks, trainer.walk_length, trainer.window
    )
    cases: List[Dict[str, float]] = [
        bench_uniform_walks(graph, num_walks, length),
        bench_metapath_walks(dataset, num_walks, length),
        bench_node2vec_walks(graph, num_walks, length),
        bench_context_pairs(graph, num_walks, length, window),
        bench_walks_plus_pairs(graph, num_walks, length, window),
        bench_generate_pairs(dataset, num_walks, length, window),
        bench_alias_build(),
    ]
    return {
        "profile": profile.name,
        "graph": repr(graph),
        "settings": {
            "num_walks": num_walks, "walk_length": length, "window": window,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cases": {case["name"]: case for case in cases},
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_walks_plus_pairs_speedup(profile):
    """Acceptance criterion: >= 10x on the walk + context-pair pipeline."""
    dataset = load_dataset("taobao", scale=profile.scale, seed=7)
    result = bench_walks_plus_pairs(
        dataset.graph, profile.trainer.num_walks,
        profile.trainer.walk_length, profile.trainer.window,
    )
    print(f"\nwalks_plus_pairs: {result['speedup']:.1f}x "
          f"({result['reference_s'] * 1e3:.1f}ms -> {result['batched_s'] * 1e3:.1f}ms)")
    assert result["speedup"] >= 10.0


def test_batched_walkers_faster(profile):
    dataset = load_dataset("taobao", scale=profile.scale, seed=7)
    trainer = profile.trainer
    for result in (
        bench_uniform_walks(dataset.graph, trainer.num_walks, trainer.walk_length),
        bench_metapath_walks(dataset, trainer.num_walks, trainer.walk_length),
        bench_node2vec_walks(dataset.graph, trainer.num_walks, trainer.walk_length),
    ):
        print(f"\n{result['name']}: {result['speedup']:.1f}x")
        assert result["speedup"] > 1.0, result


def test_alias_build_faster():
    result = bench_alias_build()
    print(f"\nalias_build: {result['speedup']:.1f}x")
    assert result["speedup"] > 1.0, result
