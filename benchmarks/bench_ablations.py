"""Design-choice ablations beyond Table VII (see DESIGN.md Sect. 4).

1. Aggregator kind: the paper states "there are no significant differences
   among these aggregators" (mean / pooling / LSTM) and uses mean everywhere;
   this bench regenerates that comparison.
2. Evaluation-sample averaging: this implementation averages several
   stochastic forward passes when materialising embeddings; the bench
   reports the effect of turning that off.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import prepare_split, run_single
from repro.utils.tables import format_table


def test_aggregator_kinds(benchmark, profile):
    def sweep():
        dataset, split = prepare_split("taobao", profile, seed=0)
        results = {}
        for kind in ("mean", "pool", "lstm"):
            run = run_single(
                "HybridGNN", "taobao", seed=0, profile=profile,
                hybrid_overrides={"aggregator": kind},
                dataset=dataset, split=split,
            )
            results[kind] = (run.link["roc_auc"], run.link["f1"])
        return results

    results = run_once(benchmark, sweep)
    print()
    rows = [[kind, roc, f1] for kind, (roc, f1) in results.items()]
    print(format_table(["Aggregator", "ROC-AUC", "F1"], rows,
                       title="Aggregator ablation (Taobao)", float_fmt="{:.2f}"))
    values = [roc for roc, _ in results.values()]
    assert max(values) - min(values) < 30.0, "aggregators should be broadly comparable"


def test_eval_sample_averaging(benchmark, profile):
    def sweep():
        dataset, split = prepare_split("taobao", profile, seed=0)
        results = {}
        for samples in (1, profile.hybrid.eval_samples):
            run = run_single(
                "HybridGNN", "taobao", seed=0, profile=profile,
                hybrid_overrides={"eval_samples": samples},
                dataset=dataset, split=split,
            )
            results[samples] = run.link["roc_auc"]
        return results

    results = run_once(benchmark, sweep)
    print()
    rows = [[samples, roc] for samples, roc in results.items()]
    print(format_table(["eval_samples", "ROC-AUC"], rows,
                       title="Embedding sample averaging (Taobao)",
                       float_fmt="{:.2f}"))
