"""Table VIII: PR@10 by degree cluster — GATNE vs HybridGNN on IMDb.

Paper finding: HybridGNN's advantage grows with node degree (richer
metapath-guided neighborhoods to sample), from +0.96% in the lowest-degree
cluster to +50% in the highest.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_table8, table8


def test_table8(benchmark, profile):
    results = run_once(benchmark, lambda: table8(profile=profile))
    print()
    print(render_table8(results))
    assert len(results["buckets"]) == 4
    assert len(results["GATNE"]) == len(results["HybridGNN"]) == 4
