"""Fig. 5: metapath attention scores per relationship (Taobao, Kuaishou).

Reads the metapath-level attention mass assigned to each aggregation flow
(Table II schemes + the ``random`` exploration flow) from a trained
HybridGNN.  Paper finding: the dominant scheme varies by relationship; the
random flow contributes most where intra-relationship interactions are
sparse, and acts as a smaller auxiliary signal on Kuaishou.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure5, render_figure5


def test_figure5(benchmark, profile):
    results = run_once(benchmark, lambda: figure5(profile=profile))
    print()
    print(render_figure5(results))
    for dataset, per_relation in results.items():
        for relation, scores in per_relation.items():
            assert "random" in scores, f"{dataset}/{relation} lacks the random flow"
            assert all(
                0 <= s <= 1 for s in scores.values() if not math.isnan(s)
            )
