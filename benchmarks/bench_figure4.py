"""Fig. 4: hyper-parameter sensitivity of HybridGNN.

Sweeps the base-embedding dimension d_m, the edge-embedding dimension d_e
and the number of negative samples n (scaled-down analogues of the paper's
grids d_m in {64..512}, d_e in {2..128}, n in {1..7}).  Paper finding: the
model is fairly insensitive, with the middle of each grid (d_m=128, d_e=8,
n=5 there) near-optimal.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure4, render_figure4


def test_figure4(benchmark, profile):
    results = run_once(benchmark, lambda: figure4(profile=profile))
    print()
    print(render_figure4(results))
    for dataset, sweeps in results.items():
        assert set(sweeps) == {"d_m", "d_e", "n"}
        for series in sweeps.values():
            assert all(0 <= roc <= 100 for roc in series.values())
