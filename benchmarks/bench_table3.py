"""Table III: link prediction on Amazon, YouTube and IMDb alikes.

Regenerates the 10-model x 5-metric comparison for the three datasets with
|O|=1 or |R|=1 (categories G1 and G2).  Paper reference values (%):

    Amazon : DeepWalk 95.89 / GATNE 97.44 / HybridGNN 97.79 (ROC-AUC)
    YouTube: DeepWalk 74.33 / GATNE 84.61 / HybridGNN 86.22
    IMDb   : DeepWalk 86.47 / GATNE 89.22 / HybridGNN 90.94

Absolute values differ on the synthetic alikes; the shape to check is that
multiplex-aware models lead the relation-agnostic ones and HybridGNN is at
or near the top.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_link_prediction, table3


def test_table3(benchmark, profile):
    results = run_once(benchmark, lambda: table3(profile=profile))
    print()
    print(render_link_prediction(results, "Table III"))
    for dataset, per_model in results.items():
        for model, row in per_model.items():
            assert all(v == v for v in row), f"NaN metric for {model} on {dataset}"
