"""Table V: randomized-exploration search depth L in {1, 2, 3}.

Paper finding: deeper exploration does not always help — Amazon peaks at
L=1, YouTube/IMDb/Taobao around L=2, and depth 3 adds noise ("the number of
meaningless metapath schemes grows with the randomized aggregation layer
deepening").  The regenerated table reports (ROC-AUC, F1) per depth.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_table5, table5


def test_table5(benchmark, profile):
    results = run_once(benchmark, lambda: table5(profile=profile))
    print()
    print(render_table5(results))
    for dataset, by_depth in results.items():
        assert set(by_depth) == {1, 2, 3}
        for roc, f1 in by_depth.values():
            assert 0 <= roc <= 100 and 0 <= f1 <= 100
