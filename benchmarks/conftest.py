"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures.  They run under the
profile named by ``$REPRO_PROFILE`` (default ``smoke``); set
``REPRO_PROFILE=paper`` for the larger configuration.  Each benchmark runs
the full experiment exactly once (rounds=1) — these are end-to-end
regenerations, not micro-benchmarks — and prints the regenerated table so
the output is directly comparable to the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.profiles import get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile()


def run_once(benchmark, func):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
