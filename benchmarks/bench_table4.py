"""Table IV: link prediction on Taobao and Kuaishou alikes (category G3).

Paper reference values (%):

    Taobao  : DeepWalk 88.21 / GATNE 97.19 / HybridGNN 98.45 (ROC-AUC)
    Kuaishou: DeepWalk 86.93 / GATNE 91.83 / HybridGNN 92.11

These are the fully multiplex heterogeneous datasets where all three of the
paper's modules are active.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import render_link_prediction, table4


def test_table4(benchmark, profile):
    results = run_once(benchmark, lambda: table4(profile=profile))
    print()
    print(render_link_prediction(results, "Table IV"))
    for dataset, per_model in results.items():
        assert "HybridGNN" in per_model and "GATNE" in per_model
