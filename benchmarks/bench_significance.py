"""The paper's statistical claim: HybridGNN's wins hold at p < 0.01 (t-test).

Runs HybridGNN and the runner-up baseline (GATNE) across paired seeds on one
dataset and reports the paired t-test on ROC-AUC.  At smoke scale (small
graphs, two seeds) the test is under-powered, so only the mechanics and the
sign of the difference are asserted; the paper profile uses more seeds.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.experiments.tables import significance_report


def test_significance(benchmark, profile):
    # The t-test needs at least two paired runs regardless of profile.
    profile = replace(profile, seeds=max(2, profile.seeds))
    result = run_once(
        benchmark,
        lambda: significance_report("taobao", baseline="GATNE", profile=profile),
    )
    print()
    print(
        f"HybridGNN vs GATNE on taobao: mean ROC-AUC difference "
        f"{result['mean_difference']:+.2f}, p={result['p_value']:.4f}"
    )
    assert 0.0 <= result["p_value"] <= 1.0
