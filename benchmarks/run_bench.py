"""Entry point: run the sampling micro-benchmarks and record the results.

Writes ``BENCH_sampling.json`` at the repository root — a machine-readable
perf trajectory so future PRs can compare against today's numbers:

    PYTHONPATH=src python benchmarks/run_bench.py [--profile smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sampling import run_all  # noqa: E402

from repro.experiments.profiles import get_profile  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="",
                        help="profile name (default: $REPRO_PROFILE / smoke)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sampling.json"),
        help="output JSON path (default: <repo>/BENCH_sampling.json)",
    )
    args = parser.parse_args(argv)

    results = run_all(get_profile(args.profile))
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"profile: {results['profile']}  ({results['graph']})")
    for name, case in results["cases"].items():
        print(
            f"  {name:<18} {case['reference_s'] * 1e3:8.2f}ms -> "
            f"{case['batched_s'] * 1e3:7.2f}ms   {case['speedup']:6.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
