"""Entry point: run the sampling micro-benchmarks and record the results.

Writes ``BENCH_sampling.json`` at the repository root — a machine-readable
perf trajectory so future PRs can compare against today's numbers:

    PYTHONPATH=src python benchmarks/run_bench.py [--profile smoke] [--out PATH]

``--compare`` flips the tool from recorder to regression gate: instead of
overwriting the committed baseline it re-measures each case and fails when
a batched stage time regressed more than ``--threshold`` (default 15%)
versus the committed numbers.  Wall-clock gating is only honest on quiet,
adequately-sized machines, so on hosts with fewer than 4 CPUs the compare
run reports the deltas but never fails — CI smoke runners land in this
report-only mode by design (the allocation budgets in
``benchmarks/alloc_budgets.json`` are the machine-independent gate there).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sampling import run_all  # noqa: E402

from repro.experiments.profiles import get_profile  # noqa: E402

#: Below this many CPUs, --compare never fails (timings are too noisy to
#: gate on; shared smoke runners routinely run 1-2 cores).
MIN_GATING_CPUS = 4


def compare_results(fresh: dict, committed: dict, threshold: float) -> list:
    """Per-case deltas of ``batched_s`` vs the committed baseline.

    Returns ``[(name, committed_s, fresh_s, delta_fraction), ...]`` for
    every case present in both runs; cases only on one side are skipped
    (a renamed benchmark should re-record, not fail the gate).
    """
    rows = []
    for name, case in fresh["cases"].items():
        base = committed["cases"].get(name)
        if base is None or not base.get("batched_s"):
            continue
        delta = case["batched_s"] / base["batched_s"] - 1.0
        rows.append((name, base["batched_s"], case["batched_s"], delta))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="",
                        help="profile name (default: $REPRO_PROFILE / smoke)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sampling.json"),
        help="output JSON path (default: <repo>/BENCH_sampling.json)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="re-measure and gate against the committed --out file "
             "instead of overwriting it",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="max tolerated batched-time regression in --compare mode "
             "(fraction, default 0.15)",
    )
    args = parser.parse_args(argv)

    results = run_all(get_profile(args.profile))

    if args.compare:
        baseline_path = Path(args.out)
        if not baseline_path.exists():
            print(f"no committed baseline at {baseline_path}; nothing to compare")
            return 1
        committed = json.loads(baseline_path.read_text())
        rows = compare_results(results, committed, args.threshold)
        cpus = os.cpu_count() or 1
        gating = cpus >= MIN_GATING_CPUS
        print(f"profile: {results['profile']}  ({results['graph']})")
        print(f"baseline: {baseline_path} ({committed.get('timestamp', '?')})")
        regressed = []
        for name, base_s, fresh_s, delta in rows:
            mark = ""
            if delta > args.threshold:
                regressed.append(name)
                mark = "  REGRESSED" if gating else "  regressed (report-only)"
            print(
                f"  {name:<18} {base_s * 1e3:8.2f}ms -> {fresh_s * 1e3:8.2f}ms"
                f"   {delta:+7.1%}{mark}"
            )
        if not gating:
            print(
                f"note: {cpus} CPU(s) < {MIN_GATING_CPUS}; timings too noisy "
                "to gate on — reporting only, exit 0 regardless of deltas"
            )
            return 0
        if regressed:
            print(
                f"FAIL: {len(regressed)} case(s) regressed more than "
                f"{args.threshold:.0%}: {', '.join(regressed)}"
            )
            return 1
        print(f"all {len(rows)} cases within {args.threshold:.0%} of baseline")
        return 0

    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")

    print(f"profile: {results['profile']}  ({results['graph']})")
    for name, case in results["cases"].items():
        print(
            f"  {name:<18} {case['reference_s'] * 1e3:8.2f}ms -> "
            f"{case['batched_s'] * 1e3:7.2f}ms   {case['speedup']:6.1f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
